// FIG-5 — "The Command and Control Server" (paper Fig. 5).
//
// Inside one box: the newsforyou dead-drop (ads / news / entries), the
// database tracking clients and panel auth, upload encryption that only the
// attack coordinator can open, the 30-minute purge of retrieved loot, and
// LogWiper. The paper quotes ~5.5GB of stolen data on one server in a week;
// our victims are scaled 1:100, so the shape to match is "gigabyte-class
// per week per server" after unscaling.

#include "bench_util.hpp"
#include "cnc/attack_center.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

// Runs the week on one server and renders every section of the figure into
// `report` (the sweep item for this figure).
void run_server(benchutil::Report& report) {
  core::World world(0xf15);
  world.add_internet_landmarks();

  cnc::AttackCenter center(world.sim(), 0x10ad);
  cnc::CncServer server(world.sim(), "cc-3", {"newsforyou.example"},
                        center.upload_key());
  server.deploy(world.network());
  server.start_purge_task(30 * sim::kMinute);
  center.manage(server);

  malware::flame::FlameConfig config;
  config.default_domains = {"newsforyou.example"};
  config.collect_period = sim::hours(8);
  config.beacon_period = sim::hours(4);
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  core::FleetSpec spec;
  spec.count = 100;
  spec.documents_per_host = 4;
  auto victims = core::make_office_fleet(world, spec);
  for (auto* host : victims) {
    core::schedule_document_work(world, *host, sim::days(1));
    flame.infect(*host, "targeted-drop");
  }

  // Operator workflow: commands down, loot up, every few hours.
  center.start_collection_task(sim::hours(3));
  world.sim().after(sim::days(1), [&] {
    center.push_command_all("module:jimmy:2", "improved scanner");
  });
  world.sim().after(sim::days(2), [&] {
    center.push_command_to(
        malware::flame::Flame::find(*victims[7])->client_id,
        "jimmy-fetch:docx", "");
  });

  world.sim().run_for(7 * sim::kDay);

  report.section("data flow through the dead-drop, one week");
  report.printf("GET_NEWS requests served    : %zu\n", server.get_news_count());
  report.printf("ADD_ENTRY uploads received  : %zu\n", server.upload_count());
  report.printf("ciphertext received         : %llu bytes (scaled 1:100 -> "
              "~%.2f GB real-world)\n",
              static_cast<unsigned long long>(server.total_upload_bytes()),
              static_cast<double>(server.total_upload_bytes()) * 100.0 / 1e9);
  report.printf("entries still on disk       : %zu (purge runs every 30 min "
              "after pickup)\n", server.entries().size());
  report.printf("clients in the database     : %zu\n",
              server.known_clients().size());
  report.printf("database rows total         : %zu across tables:",
              server.db().total_rows());
  for (const auto& table : server.db().table_names()) {
    report.printf(" %s", table.c_str());
  }
  report.printf("\naccess log lines            : %zu\n",
              server.access_log().size());

  report.section("role separation (who can read the loot)");
  // The operator sees ciphertext; only the coordinator key opens it.
  cnc::CncKeyPair operator_guess = cnc::CncKeyPair::generate(0xbad);
  std::size_t operator_reads = 0, coordinator_reads = center.archive().size();
  for (const auto& entry : server.entries()) {
    if (cnc::decrypt(operator_guess, entry.blob)) ++operator_reads;
  }
  report.printf("server admin / panel operator decrypts: %zu of %zu blobs\n",
              operator_reads, server.entries().size());
  report.printf("attack coordinator decrypts           : %zu documents\n",
              coordinator_reads);

  report.section("targeted fetch (metadata-first policy)");
  std::size_t metadata = 0, content = 0;
  for (const auto& doc : center.archive()) {
    if (doc.name.rfind("jimmy:doc:", 0) == 0) {
      ++content;
    } else if (doc.name.rfind("jimmy:meta:", 0) == 0) {
      ++metadata;
    }
  }
  report.printf("document metadata records   : %zu\n", metadata);
  report.printf("full documents (on order)   : %zu (only the jimmy-fetch "
              "target uploads content)\n", content);

  report.section("client types (Flame was one of four platform clients)");
  // Non-Flame clients of the same platform phone the same dead-drop.
  for (const char* type : {cnc::kClientTypeSp, cnc::kClientTypeSpe,
                           cnc::kClientTypeIp}) {
    net::HttpRequest poll;
    poll.host = "newsforyou.example";
    poll.path = "/newsforyou";
    poll.params = {{"cmd", "GET_NEWS"},
                   {"client", std::string("client-") + type},
                   {"type", type}};
    poll.client = std::string("unknown-") + type;
    server.handle(poll);
  }
  std::map<std::string, int> by_type;
  for (const auto& [id, row] :
       server.db().table("clients").all()) {
    ++by_type[row->at("type")];
  }
  for (const auto& [type, count] : by_type) {
    report.printf("  CLIENT_TYPE_%-4s %d clients\n", type.c_str(), count);
  }

  report.section("LogWiper.sh");
  server.run_log_wiper();
  report.printf("after the wipe: log lines=%zu, wiped=%s, database rows=%zu "
              "(tables survive; logs do not)\n",
              server.access_log().size(),
              server.logs_wiped() ? "yes" : "no", server.db().total_rows());
}

void reproduce() {
  auto reports = sim::Sweep::map_items(std::vector<int>{0}, [](int) {
    benchutil::Report report;
    run_server(report);
    return report;
  });
  reports[0].dump();
}

void BM_AddEntry(benchmark::State& state) {
  sim::Simulation simulation;
  cnc::AttackCenter center(simulation, 1);
  cnc::CncServer server(simulation, "cc", {"d"}, center.upload_key());
  const auto blob = cnc::encrypt_for(center.upload_key(),
                                     std::string(1024, 'x'));
  net::HttpRequest request;
  request.path = "/newsforyou";
  request.params = {{"cmd", "ADD_ENTRY"}, {"client", "v"}, {"type", "FL"}};
  request.body = cnc::serialize_entry_upload("doc", blob);
  for (auto _ : state) {
    auto response = server.handle(request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_AddEntry);

void BM_CoordinatorDecrypt(benchmark::State& state) {
  auto key = cnc::CncKeyPair::generate(7);
  const auto blob =
      cnc::encrypt_for(cnc::public_half(key), std::string(64 * 1024, 'y'));
  for (auto _ : state) {
    auto plain = cnc::decrypt(key, blob);
    benchmark::DoNotOptimize(plain);
  }
}
BENCHMARK(BM_CoordinatorDecrypt);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-5: inside a Flame C&C server",
                    "Figure 5 — newsforyou dead-drop, database, purge, keys");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
