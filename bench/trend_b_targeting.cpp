// TREND-B — §V-B "Targeted Malwares".
//
// "A targeted malware is a bigger threat to networks than mass malware,
// because it is not widespread and security products will not be able to
// provide a timely protection against it." The experiment runs the same
// implant in two postures against a 3-site world with an AV ecosystem whose
// analysts only obtain a sample once the outbreak is *noisy* (proportional
// to victim count). Mass spreading gets detected and burned; the targeted
// posture stays under the radar for the whole quarter.

#include "bench_util.hpp"
#include "analysis/av.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct WeekRow {
  int week = 0;
  std::size_t victims = 0;
  std::size_t collateral = 0;
  bool sig_published = false;
};

struct Outcome {
  std::size_t victims = 0;
  std::size_t target_hits = 0;      // victims inside the intended target org
  std::size_t collateral = 0;       // victims elsewhere
  sim::Duration dwell = -1;         // first infection -> first detection
  std::size_t detections = 0;
  std::vector<WeekRow> series;      // weekly snapshots, printed by the caller
};

Outcome run(bool targeted) {
  core::World world(targeted ? 0xb1 : 0xb2);
  world.add_internet_landmarks();

  // Three organisations sharing a regional exchange segment; only "energy"
  // is the intended target.
  std::vector<winsys::Host*> all;
  std::vector<winsys::Host*> energy;
  for (const char* org : {"energy", "bank", "telco"}) {
    core::FleetSpec spec;
    spec.name_prefix = org;
    spec.subnet = "region";
    spec.count = 20;
    auto fleet = core::make_office_fleet(world, spec);
    all.insert(all.end(), fleet.begin(), fleet.end());
    if (std::string(org) == "energy") energy = fleet;
  }

  malware::stuxnet::StuxnetConfig config;
  config.spread_period = targeted ? sim::days(4) : sim::hours(2);
  if (targeted) config.spread_only_prefix = "energy";
  malware::stuxnet::Stuxnet implant(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  // AV ecosystem: products everywhere, analysts publish a signature once
  // the outbreak crosses a visibility threshold (25 victims — a fleet-wide
  // anomaly someone finally escalates; a disciplined targeted operation
  // never gets that loud).
  analysis::SignatureFeed feed;
  for (auto* host : all) {
    auto& av = analysis::AvProduct::install(*host, feed);
    av.set_on_detect([&world](const analysis::Detection&) {
      world.tracker().record(malware::CampaignEventKind::kDetection,
                             "stuxnet", "av", world.sim().now());
    });
  }
  const auto sample = implant.build_dropper().serialize();
  world.sim().every(sim::days(1), [&] {
    if (feed.size() == 0 &&
        world.tracker().infected_count("stuxnet") >= 25) {
      // The noisy outbreak lands on an analyst's desk; 3-day turnaround.
      feed.publish_sample("W32.Stuxnet!dropper", sample,
                          world.sim().now() + sim::days(3));
    }
  });

  // Patient zero inside the target org either way.
  implant.infect(*energy[0], "spear-phish");

  Outcome outcome;
  for (int week = 1; week <= 12; ++week) {
    world.sim().run_for(7 * sim::kDay);
    std::size_t inside = 0;
    for (auto* host : energy) {
      if (malware::stuxnet::Stuxnet::find(*host) != nullptr) ++inside;
    }
    const auto victims = world.tracker().infected_count("stuxnet");
    outcome.series.push_back(
        WeekRow{week, victims, victims - inside, feed.size() > 0});
  }

  outcome.victims = world.tracker().infected_count("stuxnet");
  for (auto* host : energy) {
    if (malware::stuxnet::Stuxnet::find(*host) != nullptr) {
      ++outcome.target_hits;
    }
  }
  outcome.collateral = outcome.victims - outcome.target_hits;
  outcome.dwell = world.tracker().dwell_time("stuxnet");
  std::size_t detections = 0;
  for (auto* host : all) {
    if (auto* av = analysis::AvProduct::find(*host)) {
      detections += av->detections().size();
    }
  }
  outcome.detections = detections;
  return outcome;
}

void print_series(const Outcome& outcome) {
  std::printf("%-6s %-9s %-12s %-11s\n", "week", "victims", "collateral",
              "sig-found");
  for (const auto& row : outcome.series) {
    std::printf("%-6d %-9zu %-12zu %-11s\n", row.week, row.victims,
                row.collateral, row.sig_published ? "published" : "no");
  }
}

void reproduce() {
  // The two postures are independent quarters: run them in parallel and
  // print the collected weekly series afterwards, in posture order.
  const auto outcomes = sim::Sweep::map_items(
      std::vector<bool>{false, true},
      [](bool targeted) { return run(targeted); });
  const auto& mass = outcomes[0];
  const auto& targeted = outcomes[1];

  benchutil::section("mass posture (spread everywhere, loudly)");
  print_series(mass);
  benchutil::section("targeted posture (slow, target org only)");
  print_series(targeted);

  benchutil::section("quarter summary");
  std::printf("%-26s %-10s %-12s %-12s %-14s\n", "posture", "victims",
              "collateral", "detections", "dwell-time");
  auto row = [](const char* label, const Outcome& o) {
    const std::string dwell =
        o.dwell < 0 ? "undetected" : sim::format_duration(o.dwell);
    std::printf("%-26s %-10zu %-12zu %-12zu %-14s\n", label, o.victims,
                o.collateral, o.detections, dwell.c_str());
  };
  row("mass", mass);
  row("targeted", targeted);
  std::printf("\nexpected shape: the mass posture gets a signature and "
              "burns; the targeted one keeps its foothold all quarter — the "
              "paper's \"timely protection\" failure.\n");
}

void BM_QuarterCampaign(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = run(state.range(0) != 0);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_QuarterCampaign)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-B: targeted vs mass malware", "Section V-B");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
