// TREND-C — §V-C "Certified Malwares".
//
// Three distinct PKI abuses power the campaign's kernel access:
//   Stuxnet : drivers signed with *stolen* JMicron/Realtek keys,
//   Flame   : a *forged* code-signing cert off the weak-hash TS chain,
//   Shamoon : a *legitimately signed* third-party raw-disk driver (Eldos).
// The bench builds the full matrix: driver provenance x host signing policy
// x revocation state, and prints whether the kernel lets each one in.

#include "bench_util.hpp"
#include "pki/forgery.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct DriverCase {
  std::string label;
  pe::Image image;
};

void reproduce() {
  pki::MicrosoftPki ms(0, 0xc3);
  auto vendor_root = benchutil::SigningIdentity::make(
      "Realtek Semiconductor Corp", 0x2ea1);
  auto eldos = benchutil::SigningIdentity::make("EldoS Corporation", 0xe1d0);

  auto make_driver = [](const char* filename) {
    return pe::Builder{}
        .program("bench.driver")
        .filename(filename)
        .section(".text", std::string("driver body of ") + filename, true)
        .build();
  };

  std::vector<DriverCase> drivers;
  drivers.push_back({"unsigned rootkit driver", make_driver("rootkit.sys")});
  {
    auto image = make_driver("mrxcls.sys");
    pki::sign_image(image, vendor_root.cert, vendor_root.key);  // stolen key
    drivers.push_back({"stolen Realtek certificate", std::move(image)});
  }
  {
    auto activation = ms.activate_license_server("Victim Org");
    auto forged =
        pki::forge_code_signing_cert(activation.license_cert, "MS", 0xf0);
    auto image = make_driver("flame.sys");
    pki::sign_image(image, forged->certificate, forged->private_key);
    drivers.push_back({"forged MS (weak-hash) certificate", std::move(image)});
  }
  {
    auto image = make_driver("drdisk.sys");
    pki::sign_image(image, eldos.cert, eldos.key);
    drivers.push_back({"legit Eldos raw-disk driver", std::move(image)});
  }
  {
    auto image = make_driver("mrxcls.sys");
    pki::sign_image(image, vendor_root.cert, vendor_root.key);
    auto* section = &image.sections[0];
    section->data += " [re-patched after signing]";
    drivers.push_back({"stolen cert, tampered post-sign", std::move(image)});
  }

  struct Posture {
    std::string label;
    winsys::DriverPolicy policy;
    bool revoke_abused;      // JMicron/Realtek certs pulled, advisory applied
    bool reject_weak_hash;
  } postures[] = {
      {"WinXP-era (unsigned ok)", winsys::DriverPolicy::kAllowUnsigned, false,
       false},
      {"Win7-x64 (signature enforced)",
       winsys::DriverPolicy::kRequireValidSignature, false, false},
      {"post-incident (revocations applied)",
       winsys::DriverPolicy::kRequireValidSignature, true, false},
      {"hardened (also rejects weak hash)",
       winsys::DriverPolicy::kRequireValidSignature, true, true},
  };

  benchutil::section("driver-load matrix (provenance x host posture)");
  std::printf("%-36s", "driver \\ posture");
  for (const auto& posture : postures) std::printf("| %-22.22s ", posture.label.c_str());
  std::printf("\n");

  // One parallel run per driver row. Each run builds its own Simulation,
  // registry and probe hosts; the PKI identities are shared read-only.
  const auto rows = sim::Sweep::map_items(
      drivers, [&](const DriverCase& driver_case) {
        sim::Simulation simulation;
        winsys::ProgramRegistry programs;
        std::vector<std::string> verdicts;
        for (const auto& posture : postures) {
          winsys::Host host(simulation, programs, "probe",
                            winsys::OsVersion::kWin7);
          host.set_driver_policy(posture.policy);
          ms.install_into(host.cert_store());
          ms.anchor_root(host.trust_store());
          vendor_root.trust_on(host);
          eldos.trust_on(host);
          if (posture.revoke_abused) {
            host.trust_store().mark_untrusted(vendor_root.cert.serial);
            ms.apply_advisory_2718704(host.trust_store());
          }
          host.trust_store().set_reject_weak_hash(posture.reject_weak_hash);

          host.fs().write_file("c:\\d.sys", driver_case.image.serialize(), 0);
          const auto result =
              host.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
          verdicts.emplace_back(result == winsys::DriverLoadResult::kLoaded
                                    ? "LOADED"
                                    : to_string(result));
        }
        return verdicts;
      });

  for (std::size_t i = 0; i < drivers.size(); ++i) {
    std::printf("%-36s", drivers[i].label.c_str());
    for (const auto& verdict : rows[i]) {
      std::printf("| %-22.22s ", verdict.c_str());
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: the era's policies load everything signed "
              "(that is the trend); only revocation + weak-hash rejection "
              "close the three abuse classes, and the *legit* Eldos driver "
              "survives even then — exactly why Shamoon chose it.\n");
}

void BM_DriverLoadDecision(benchmark::State& state) {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  auto eldos = benchutil::SigningIdentity::make("EldoS", 1);
  winsys::Host host(simulation, programs, "probe", winsys::OsVersion::kWin7x64);
  eldos.trust_on(host);
  auto image = pe::Builder{}.program("d").section(".text", "x", true).build();
  pki::sign_image(image, eldos.cert, eldos.key);
  host.fs().write_file("c:\\d.sys", image.serialize(), 0);
  for (auto _ : state) {
    auto result = host.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
    benchmark::DoNotOptimize(result);
    host.unload_driver("d");
  }
}
BENCHMARK(BM_DriverLoadDecision);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-C: certified malware — three PKI abuses",
                    "Section V-C");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
