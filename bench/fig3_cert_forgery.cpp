// FIG-3 — "Leveraging Microsoft Certificate to Sign Code" (paper Fig. 3).
//
// The Terminal Services Licensing chain: enterprise activates a TSLS with
// Microsoft, receives a limited (license-verification) certificate whose
// issuer signature still uses a weak hash; the attacker forges a
// code-signing twin via a collision and signs a fake Windows Update that
// stock clients accept. The bench prints the full acceptance matrix across
// certificates and client postures, plus forgery-cost statistics.

#include "bench_util.hpp"
#include "pki/forgery.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct Client {
  const char* label;
  pki::CertStore store;
  pki::TrustStore trust;
};

void reproduce() {
  const sim::TimePoint now = sim::make_date(2012, 5, 1);
  pki::MicrosoftPki ms(sim::make_date(2010, 1, 1), 0xf16c3);
  auto activation = ms.activate_license_server("Contoso Energy");

  // Signer lineup.
  auto forged =
      pki::forge_code_signing_cert(activation.license_cert, "MS", 0xbad);
  auto make_update = [&](const char* program) {
    return pe::Builder{}
        .program(program)
        .filename("WuSetupV.exe")
        .section(".text", "update body", true)
        .build();
  };
  pe::Image genuine = make_update("genuine.update");
  pki::sign_image(genuine, ms.update_signing_cert(), ms.update_signing_key());
  pe::Image license_signed = make_update("flame.fake");
  pki::sign_image(license_signed, activation.license_cert,
                  activation.license_key);
  pe::Image forged_signed = make_update("flame.fake");
  pki::sign_image(forged_signed, forged->certificate, forged->private_key);
  pe::Image unsigned_update = make_update("flame.fake");

  // Client posture lineup.
  std::vector<Client> clients(3);
  clients[0].label = "stock client (2010-2012 era)";
  clients[1].label = "post-advisory-2718704 client";
  clients[2].label = "weak-hash-rejecting client";
  for (auto& client : clients) {
    ms.install_into(client.store);
    ms.anchor_root(client.trust);
  }
  ms.apply_advisory_2718704(clients[1].trust);
  clients[2].trust.set_reject_weak_hash(true);

  benchutil::section("Windows-Update acceptance matrix");
  std::printf("%-34s", "binary \\ client");
  for (const auto& client : clients) std::printf(" | %-30s", client.label);
  std::printf("\n");
  struct RowCase {
    const char* label;
    const pe::Image* image;
  } rows[] = {
      {"genuine Microsoft update", &genuine},
      {"unsigned fake", &unsigned_update},
      {"fake signed w/ license cert", &license_signed},
      {"fake signed w/ FORGED cert", &forged_signed},
  };
  for (const auto& row : rows) {
    std::printf("%-34s", row.label);
    for (auto& client : clients) {
      const auto verdict =
          pki::verify_image(*row.image, client.store, client.trust, now);
      std::printf(" | %-30s", verdict.valid() ? "ACCEPTED+EXECUTED"
                                              : verdict.describe().c_str());
    }
    std::printf("\n");
  }

  benchutil::section("chain anatomy of the forged certificate");
  const auto& cert = forged->certificate;
  std::printf("subject       : %s\n", cert.subject.c_str());
  std::printf("usage         : %s (escalated from %s)\n",
              pki::usage_to_string(cert.usage).c_str(),
              pki::usage_to_string(activation.license_cert.usage).c_str());
  std::printf("issuer        : %s\n", cert.issuer_subject.c_str());
  std::printf("sig algorithm : %s\n", pki::to_string(cert.issuer_sig.alg));
  std::printf("collision pad : %zu bytes\n", cert.collision_padding.size());

  benchutil::section("forgery cost over 200 activations");
  // Activations draw from the shared MicrosoftPki RNG, so they stay serial;
  // the forgeries themselves are pure functions of (cert, seed) and sweep
  // across the pool. Folding in item order keeps the stats deterministic.
  struct ForgeCase {
    pki::Certificate license_cert;
    std::uint64_t seed = 0;
  };
  std::vector<ForgeCase> victims(200);
  for (int i = 0; i < 200; ++i) {
    victims[i].license_cert =
        ms.activate_license_server("Org-" + std::to_string(i)).license_cert;
    victims[i].seed = 0x1000 + static_cast<std::uint64_t>(i);
  }
  struct ForgeOut {
    bool ok = false;
    std::size_t pad = 0;
  };
  const auto attempts =
      sim::Sweep::map_items(victims, [](const ForgeCase& c) {
        auto attempt =
            pki::forge_code_signing_cert(c.license_cert, "MS", c.seed);
        ForgeOut out;
        out.ok = attempt.has_value();
        if (attempt) out.pad = attempt->certificate.collision_padding.size();
        return out;
      });
  std::size_t total_pad = 0, max_pad = 0, failures = 0;
  for (const auto& attempt : attempts) {
    if (!attempt.ok) {
      ++failures;
      continue;
    }
    total_pad += attempt.pad;
    max_pad = std::max(max_pad, attempt.pad);
  }
  std::printf("forgeries: 200, failures: %zu, avg collision pad: %zu bytes, "
              "max: %zu bytes\n",
              failures, total_pad / 200, max_pad);
  std::printf("(against the strong-hash chain the same attack fails: %s)\n",
              pki::forge_code_signing_cert(ms.update_signing_cert(), "MS", 1)
                      .has_value()
                  ? "UNEXPECTEDLY SUCCEEDED"
                  : "no collision available");
}

void BM_ForgeCertificate(benchmark::State& state) {
  pki::MicrosoftPki ms(0, 1);
  auto activation = ms.activate_license_server("Bench Org");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto forged = pki::forge_code_signing_cert(activation.license_cert, "MS",
                                               ++seed);
    benchmark::DoNotOptimize(forged);
  }
}
BENCHMARK(BM_ForgeCertificate);

void BM_VerifySignedImage(benchmark::State& state) {
  pki::MicrosoftPki ms(0, 2);
  pki::CertStore store;
  pki::TrustStore trust;
  ms.install_into(store);
  ms.anchor_root(trust);
  auto image = pe::Builder{}.program("x").section(".text", "body", true).build();
  pki::sign_image(image, ms.update_signing_cert(), ms.update_signing_key());
  for (auto _ : state) {
    auto verdict = pki::verify_image(image, store, trust, sim::days(100));
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_VerifySignedImage);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-3: Terminal-Services certificate forgery",
                    "Figure 3 — limited cert + weak hash -> signed malware");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
