// ABLATION — the zero-day window: worm vs patch rollout.
//
// §V-A prices zero-days in six figures; this experiment shows what the
// money buys as a function of time. The same LNK+spooler worm is seeded at
// t=0 against a 60-host enterprise; the bulletins ship after a varying
// embargo, then adoption follows an exponential lag (mean 10 days, 10%
// never patch). Final reach measures the exploit's decaying value.

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "exploits/patching.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

std::size_t run(sim::Duration embargo, sim::Duration mean_lag) {
  core::World world(0xace);
  world.add_internet_landmarks();
  core::FleetSpec spec;
  spec.count = 60;
  spec.vulns = {exploits::VulnId::kMs10_046_Lnk,
                exploits::VulnId::kMs10_061_Spooler,
                exploits::VulnId::kMs10_073_Eop};
  auto fleet = core::make_office_fleet(world, spec);

  exploits::PatchRollout rollout(world.sim(), world.rng().fork());
  exploits::RolloutPolicy policy;
  policy.published_at = embargo;
  policy.mean_adoption_lag = mean_lag;
  policy.never_patch_fraction = 0.10;
  rollout.schedule(exploits::VulnId::kMs10_046_Lnk, fleet, policy);
  rollout.schedule(exploits::VulnId::kMs10_061_Spooler, fleet, policy);

  malware::stuxnet::StuxnetConfig config;
  // A patient, targeted cadence (loud worms die to AV instead, §V-B).
  config.spread_period = sim::days(2);
  config.use_shares = false;
  malware::stuxnet::Stuxnet worm(world.sim(), world.network(),
                                 world.programs(), world.s7_registry(),
                                 world.tracker(), config);
  auto& stick = world.add_usb("seed");
  worm.arm_usb(stick);
  core::schedule_usb_courier(world, stick, {fleet[0], fleet[20], fleet[40]},
                             sim::hours(12));
  world.sim().run_for(sim::days(120));
  return world.tracker().infected_count("stuxnet");
}

void reproduce() {
  benchutil::section(
      "final reach (60 hosts, 120 days) vs bulletin embargo");
  std::printf("%-24s %-22s %-10s\n", "bulletin ships after",
              "adoption lag (mean)", "infected");
  // Every (embargo, lag) cell is an independent 120-day campaign: sweep the
  // whole table at once and print in row order.
  struct Cell {
    sim::Duration embargo;
    sim::Duration lag;
  };
  const std::vector<Cell> embargo_cells{{sim::days(0), sim::days(10)},
                                        {sim::days(7), sim::days(10)},
                                        {sim::days(21), sim::days(10)},
                                        {sim::days(60), sim::days(10)}};
  const std::vector<Cell> lag_cells{{sim::days(7), sim::days(2)},
                                    {sim::days(7), sim::days(10)},
                                    {sim::days(7), sim::days(45)}};
  auto run_cell = [](const Cell& c) { return run(c.embargo, c.lag); };
  const auto embargo_reach = sim::Sweep::map_items(embargo_cells, run_cell);
  for (std::size_t i = 0; i < embargo_cells.size(); ++i) {
    std::printf("%-24s %-22s %-10zu\n",
                sim::format_duration(embargo_cells[i].embargo).c_str(), "10d",
                embargo_reach[i]);
  }
  benchutil::section("patch discipline matters as much as the embargo");
  std::printf("%-24s %-22s %-10s\n", "bulletin ships after",
              "adoption lag (mean)", "infected");
  const auto lag_reach = sim::Sweep::map_items(lag_cells, run_cell);
  for (std::size_t i = 0; i < lag_cells.size(); ++i) {
    std::printf("%-24s %-22s %-10zu\n", "7d",
                sim::format_duration(lag_cells[i].lag).c_str(), lag_reach[i]);
  }
  std::printf("\nexpected shape: reach grows with the undisclosed window "
              "and with adoption lag; even day-zero disclosure leaves the "
              "never-patch stragglers owned.\n");
}

void BM_PatchRaceQuarter(benchmark::State& state) {
  for (auto _ : state) {
    auto reach = run(sim::days(state.range(0)), sim::days(10));
    benchmark::DoNotOptimize(reach);
  }
}
BENCHMARK(BM_PatchRaceQuarter)->Arg(0)->Arg(60)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("ABLATION: the zero-day window vs patch rollout",
                    "Section V-A pricing, defender-side dynamics");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
