// TREND-F — §V-F "Suiciding Malwares".
//
// "The module completely removes the malware from a system, deleting every
// single trace of its existence... this makes any forensics investigation
// very difficult." The experiment runs identical Flame operations to the
// same depth and ends them four ways, then sends in the forensics team —
// on the victims and on a seized C&C server.

#include "bench_util.hpp"
#include "analysis/forensics.hpp"
#include "cnc/attack_center.hpp"
#include "malware/flame/flame.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

const std::vector<std::string> kFlameIndicators = {
    "mssecmgr", "advnetcfg", "msglu32", "nteps32", "soapr32", "mscrypt"};

struct Ending {
  const char* label;
  bool order_suicide;
  bool wipe_server_logs;
  bool abandon;  // operators walk away leaving everything in place
};

struct Evidence {
  std::size_t live = 0;
  std::size_t recovered = 0;
  std::size_t shredded = 0;
  double recoverability = 0;
  analysis::ServerForensics server;
};

Evidence run(const Ending& ending) {
  core::World world(0xf0);
  world.add_internet_landmarks();
  cnc::AttackCenter center(world.sim(), 0xf1);
  cnc::CncServer server(world.sim(), "cc-0", {"quiet-zone.net"},
                        center.upload_key());
  server.deploy(world.network());
  server.start_purge_task();
  center.manage(server);
  center.start_collection_task(sim::hours(6));

  malware::flame::FlameConfig config;
  config.default_domains = {"quiet-zone.net"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  core::FleetSpec spec;
  spec.count = 8;
  auto fleet = core::make_office_fleet(world, spec);
  for (auto* host : fleet) flame.infect(*host, "targeted-drop");

  world.sim().run_for(sim::days(30));  // a month of quiet espionage

  // Discovery day.
  if (ending.order_suicide) center.order_suicide();
  if (ending.wipe_server_logs && !ending.order_suicide) {
    server.run_log_wiper();
  }
  world.sim().run_for(sim::days(2));  // kill order propagates on beacons

  Evidence evidence;
  for (auto* host : fleet) {
    const auto report = analysis::examine_host(*host, kFlameIndicators);
    evidence.live += report.live_artifacts.size();
    evidence.recovered += report.recovered_files.size();
    evidence.shredded += report.shredded_remnants;
  }
  const double with_content =
      static_cast<double>(evidence.live + evidence.recovered);
  const double total = with_content + static_cast<double>(evidence.shredded);
  evidence.recoverability = total == 0 ? 0 : with_content / total;
  evidence.server = analysis::examine_server(server);
  (void)ending.abandon;
  return evidence;
}

void reproduce() {
  const std::vector<Ending> endings{
      {"operators abandon everything", false, false, true},
      {"LogWiper on the server only", false, true, false},
      {"SUICIDE broadcast (Flame's ending)", true, true, false},
  };
  // The three endings are independent 32-day operations; sweep them.
  const auto results = sim::Sweep::map_items(endings, run);

  benchutil::section("victim-side evidence after each ending (8 hosts)");
  std::printf("%-38s %-7s %-11s %-10s %-15s\n", "ending", "live",
              "recovered", "shredded", "recoverability");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-38s %-7zu %-11zu %-10zu %.0f%%\n", endings[i].label,
                results[i].live, results[i].recovered, results[i].shredded,
                100.0 * results[i].recoverability);
  }

  benchutil::section("seized C&C server, same three endings");
  std::printf("%-38s %-10s %-9s %-9s %-9s\n", "ending", "log-lines",
              "db-rows", "entries", "clients");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-38s %-10zu %-9zu %-9zu %-9zu\n", endings[i].label,
                results[i].server.access_log_lines,
                results[i].server.database_rows,
                results[i].server.entries_on_disk,
                results[i].server.client_identities);
  }
  std::printf("\nexpected shape: the abandoned operation leaves a full "
              "evidence trail; SUICIDE drives victim-side recoverability to "
              "zero (shredded remnants prove existence, nothing more) while "
              "the purge + LogWiper leave a seized server with database "
              "stubs only — matching what investigators actually found.\n");
}

void BM_ForensicSweep(benchmark::State& state) {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  winsys::Host host(simulation, programs, "victim", winsys::OsVersion::kWin7);
  for (int i = 0; i < 200; ++i) {
    host.fs().write_file("c:\\users\\docs\\file" + std::to_string(i), "x", 0);
  }
  host.fs().write_file("c:\\windows\\system32\\mssecmgr.ocx", "main", 0);
  for (auto _ : state) {
    auto report = analysis::examine_host(host, kFlameIndicators);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ForensicSweep);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-F: suicide modules vs the forensics team",
                    "Section V-F");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
