// EPIDEMIC-SCALING — the paper's campaigns at 1:1 scale on the
// template-image + copy-on-write host substrate.
//
// The fig/trend worlds run at 1:30 because the original winsys::Host owned a
// fully materialized filesystem/registry/PKI tree. With golden archetype
// images (winsys::HostImage) and per-host copy-on-write deltas, a host costs
// one empty delta until the campaign actually touches it, so the real
// numbers fit in memory: Stuxnet's ~100k Windows infections (paper §II) and
// the full ~9,000-centrifuge Natanz cascade hall (§II-D) instead of our
// 30-host stand-ins.
//
// Four passes:
//  (1) identity — the refactor contract. A fully-materialized twin and an
//      image-backed twin are pushed through the same mutation script and
//      must expose byte-identical state; then every existing fig/trend/
//      ablation/attribution repro output is re-run and checksummed against
//      the retained seed baselines (FNV-1a over the report bytes). Fatal on
//      any divergence: COW is an implementation detail, not a behaviour.
//  (2) trend-b shape at 1:1 — mass vs targeted posture over a 128-site,
//      102,400-host world (paper §V-B). The mass posture saturates ~100k
//      hosts and gets burned by the AV ecosystem; the targeted posture keeps
//      its foothold all quarter, exactly the 30-host curve writ large.
//  (3) trend-e shape at 1:1 — the USB courier-cadence race into an
//      air-gapped plant (§V-E), with the full 55-cascade / 9,020-centrifuge
//      Natanz site behind the gap and a nine-month sabotage campaign.
//  (4) memory — per-host heap for an image-backed fleet vs the same content
//      fully materialized per host. Gated >= 10x (fatal), exported as
//      bench_diff counters (`heap_per_host` ceiling, `cow_ratio` floor).
//
// The BM_* cases export `hosts_per_sec`, `heap_per_host` and `cow_ratio`;
// CI gates hosts_per_sec as a --floor and heap_per_host as a --ceiling.
//
// Pass --mega for the 10⁶-host world (1,250 sites), --print-checksums to
// re-emit the identity table after an intentional output change.

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "winsys/host_image.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <new>
#include <string>
#include <string_view>
#include <vector>

using namespace cyd;

// ---------------------------------------------------------------------------
// Counting allocator hook: cumulative requested bytes, for the per-host
// heap measurements. Same precedent as tests/sim/event_queue_alloc_test.cpp;
// this binary owns its global operator new, so it stays out of the library.

namespace {
std::atomic<std::uint64_t> g_heap_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr const char* kFamily = malware::stuxnet::Stuxnet::kFamily;

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

[[noreturn]] void fatal(const std::string& message) {
  std::printf("FATAL: %s\n", message.c_str());
  std::exit(1);
}

/// VmRSS / VmHWM in kB from /proc/self/status (0 when unavailable) — for
/// reporting only; the gated numbers come from the deterministic heap hook.
std::size_t proc_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    return static_cast<std::size_t>(
        std::strtoull(line.c_str() + std::strlen(key) + 1, nullptr, 10));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Identity pass 1/2: a materialized twin and an image-backed twin must stay
// indistinguishable through writes, overwrites, deletes, renames and
// registry edits.

void check_twin_equivalence() {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  const auto archetype = winsys::HostArchetype::kOfficePc;
  const auto image = winsys::make_archetype_image(archetype);

  winsys::Host cow(simulation, programs, "twin-cow", image);
  winsys::Host mat(simulation, programs, "twin-mat",
                   winsys::default_os(archetype));
  winsys::populate_archetype(archetype, mat.fs(), mat.registry());

  // The same mutation script against both substrates.
  const auto mutate = [](winsys::Host& host) {
    auto& fs = host.fs();
    const auto victims = fs.find_files(winsys::Path("c:\\windows\\fonts"));
    fs.write_file(winsys::Path("c:\\users\\staff\\notes.txt"),
                  "meeting notes", sim::hours(1));
    fs.write_file(winsys::Path("c:\\windows\\win.ini"),
                  "; rewritten by setup", sim::hours(2));
    fs.delete_file(victims.front(), sim::hours(3));
    fs.rename(victims.back(),
              winsys::Path("c:\\windows\\fonts\\renamed.ttf"), sim::hours(4));
    host.registry().set("hklm\\software\\vendor", "installed", "1");
    host.registry().set("hklm\\system\\currentcontrolset\\control",
                        "WaitToKillServiceTimeout", std::uint32_t{9000});
    host.registry().remove_key(
        "hklm\\system\\currentcontrolset\\services\\spooler");
  };
  mutate(cow);
  mutate(mat);

  const auto cow_files = cow.fs().all_files();
  const auto mat_files = mat.fs().all_files();
  if (cow_files.size() != mat_files.size()) {
    fatal("twin divergence: " + std::to_string(cow_files.size()) + " vs " +
          std::to_string(mat_files.size()) + " files");
  }
  for (std::size_t i = 0; i < cow_files.size(); ++i) {
    if (cow_files[i].str() != mat_files[i].str() ||
        cow.fs().read_file(cow_files[i]) != mat.fs().read_file(mat_files[i])) {
      fatal("twin divergence at " + cow_files[i].str());
    }
  }
  if (cow.registry().all_entries() != mat.registry().all_entries()) {
    fatal("twin divergence in the registry hive");
  }
  const auto& cow_tombs = cow.fs().volume('c')->tombstones();
  const auto& mat_tombs = mat.fs().volume('c')->tombstones();
  if (cow_tombs.size() != mat_tombs.size() ||
      (cow_tombs.size() > 0 &&
       (cow_tombs.front().rel_path != mat_tombs.front().rel_path ||
        cow_tombs.front().data != mat_tombs.front().data))) {
    fatal("twin divergence in delete tombstones");
  }
  std::printf("image-backed twin == materialized twin through the mutation "
              "script:\n%zu files byte-identical, registry hives equal, "
              "%zu tombstone(s) equal\n",
              cow_files.size(), cow_tombs.size());
}

// ---------------------------------------------------------------------------
// Identity pass 2/2: every retained repro output, re-run and checksummed.
// The expected values are FNV-1a 64 over each sibling bench's full repro
// output (stdout+stderr, wall-clock sweep lines excluded). Refresh with
// --print-checksums after an *intentional* output change.

struct ReproChecksum {
  const char* bench;
  std::uint64_t fnv64;
};

constexpr ReproChecksum kSeedChecksums[] = {
    {"fig1_stuxnet_operation", 0xd5acfef738e5a261ULL},
    {"fig2_flame_mitm", 0x65cbd3d4e33bd97fULL},
    {"fig3_cert_forgery", 0x6f3e9a206cba6c24ULL},
    {"fig4_cnc_platform", 0x5216840b643e4f7aULL},
    {"fig5_cnc_server", 0x8516b7a40fec622eULL},
    {"fig6_shamoon", 0x2226a376acbbeee6ULL},
    {"trend_a_sophistication", 0x2ae408eb66995428ULL},
    {"trend_b_targeting", 0xe7f4584a20da4c6aULL},
    {"trend_c_certified", 0x1c13fcff999f9dd3ULL},
    {"trend_d_modularity", 0x97ac8c97a76824a8ULL},
    {"trend_e_usb", 0x62dcf2f99b92efbcULL},
    {"trend_f_suicide", 0x013032616ff40b5cULL},
    {"ablation_stuxnet_design", 0xe9bd30510d012299ULL},
    {"ablation_patch_race", 0x8cf9114c73bcf8a8ULL},
    {"attribution_matrix", 0x65352f6485e090a6ULL},
};

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Drops the sweep harness's wall-clock lines; everything else in a repro
/// report is deterministic for a fixed seed.
std::string strip_timing_lines(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    end = end == std::string::npos ? text.size() : end + 1;
    const std::string_view line(text.data() + pos, end - pos);
    if (line.find(" ms wall") == std::string_view::npos) out.append(line);
    pos = end;
  }
  return out;
}

std::string run_sibling(const std::string& dir, const char* name) {
  const std::string cmd =
      dir + "/" + name + " --benchmark_filter=NONEXISTENT 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    out.append(buffer, n);
  }
  pclose(pipe);
  return out;
}

void reproduce_identity(const std::string& exe_dir, bool print_checksums) {
  benchutil::section("identity: COW substrate vs materialized semantics");
  check_twin_equivalence();

  benchutil::section(
      "identity: retained repro outputs, re-run and checksummed");
  std::printf("%-28s %-10s %-18s %s\n", "bench", "bytes", "fnv1a-64",
              "verdict");
  std::size_t mismatches = 0;
  for (const auto& expected : kSeedChecksums) {
    const std::string raw = run_sibling(exe_dir, expected.bench);
    if (raw.empty()) {
      fatal(std::string("could not run ") + exe_dir + "/" + expected.bench +
            " (build all bench targets first)");
    }
    const std::string report = strip_timing_lines(raw);
    const std::uint64_t got = fnv1a64(report);
    if (print_checksums) {
      std::printf("    {\"%s\", 0x%016llxULL},\n", expected.bench,
                  static_cast<unsigned long long>(got));
      continue;
    }
    const bool match = got == expected.fnv64;
    if (!match) ++mismatches;
    std::printf("%-28s %-10zu 0x%016llx %s\n", expected.bench, report.size(),
                static_cast<unsigned long long>(got),
                match ? "identical" : "DIVERGED");
  }
  if (print_checksums) return;
  if (mismatches > 0) {
    fatal(std::to_string(mismatches) +
          " repro output(s) diverged from the seed baselines — the COW "
          "substrate must be bit-transparent");
  }
  std::printf("\nall %zu retained fig/trend/ablation/attribution outputs are "
              "byte-identical through the image/COW refactor.\n",
              std::size(kSeedChecksums));
}

// ---------------------------------------------------------------------------
// Trend-b shape at 1:1 (paper §V-B): mass vs targeted posture over a
// multi-site world. Stuxnet's own periodic spreading is parked beyond the
// horizon; the bench drives a deterministic per-site contact process and
// every victim takes the real infection footprint (dropper, signed rootkit
// drivers, service, observers) into its COW delta.

struct WeekRow {
  int week = 0;
  std::size_t victims = 0;
  std::size_t collateral = 0;
  bool sig_published = false;
};

struct EpiConfig {
  std::size_t sites = 128;
  std::size_t hosts_per_site = 800;
  bool targeted = false;
  /// Global victim count at which the outbreak lands on an analyst's desk
  /// (trend-b's 25-victim threshold, scaled to a 10⁵-host world).
  std::size_t escalation_threshold = 25'000;
  int weeks = 12;
};

struct EpiOutcome {
  std::size_t hosts = 0;
  std::size_t victims = 0;
  std::size_t target_hits = 0;
  std::size_t collateral = 0;
  std::size_t detections = 0;
  sim::Duration dwell = -1;
  std::vector<WeekRow> series;
  double build_ms = 0.0;
  double run_ms = 0.0;
};

EpiOutcome epidemic_run(const EpiConfig& cfg) {
  core::World world(cfg.targeted ? 0xeb1 : 0xeb2);
  EpiOutcome outcome;
  outcome.hosts = cfg.sites * cfg.hosts_per_site;

  // Hundreds of single-archetype office sites; the first eight double as the
  // regional WAN hubs (fully meshed), every other site hangs off its region.
  // bench/sharded_des_scaling drives this same topology through
  // sim::ShardedScheduler — the site layer built here is the shard map there
  // (World::shard_plan), and the WAN latencies are its lookahead. The shape
  // itself lives in benchutil::build_hub_spoke_fleet, shared by all three
  // scaling benches.
  std::vector<std::string> site_names;
  std::vector<core::FleetHandle> fleets;
  outcome.build_ms = time_ms([&] {
    auto fleet =
        benchutil::build_hub_spoke_fleet(world, cfg.sites, cfg.hosts_per_site);
    site_names = std::move(fleet.site_names);
    fleets = std::move(fleet.fleets);
  });

  malware::stuxnet::StuxnetConfig config;
  // The implant's own beacon/spread timers are parked beyond the horizon —
  // propagation is the bench's deterministic contact process below.
  config.beacon_period = sim::days(4000);
  config.spread_period = sim::days(4000);
  malware::stuxnet::Stuxnet implant(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  const auto& hosts = world.hosts();
  struct SiteState {
    std::size_t infected = 0;
    std::size_t next = 0;
  };
  std::vector<SiteState> states(cfg.sites);
  const auto infect_next = [&](std::size_t s, const char* vector) {
    SiteState& state = states[s];
    if (state.next >= cfg.hosts_per_site) return false;
    winsys::Host& victim = *hosts[fleets[s].first + state.next++];
    if (implant.infect(victim, vector)) ++state.infected;
    return true;
  };

  // Patient zero inside the target org either way (trend-b's spear-phish).
  infect_next(0, "spear-phish");

  bool exported = false;
  bool published = false;
  sim::TimePoint sig_live = -1;
  // Mass growth saturates a site in ~10 days; the targeted posture creeps
  // through the target org only, staying under the analysts' radar.
  const double rate = cfg.targeted ? 0.10 : 0.80;
  world.sim().every(sim::kDay, [&] {
    const bool burned = sig_live >= 0 && world.sim().now() >= sig_live;
    if (!burned) {
      for (std::size_t s = 0; s < cfg.sites; ++s) {
        if (states[s].infected == 0) continue;
        if (cfg.targeted && s != 0) continue;  // §V-B targeting discipline
        const auto fresh = static_cast<std::size_t>(
            std::ceil(static_cast<double>(states[s].infected) * rate));
        for (std::size_t k = 0; k < fresh; ++k) {
          if (!infect_next(s, "lateral-share")) break;
        }
      }
      if (!cfg.targeted && !exported &&
          world.tracker().infected_count(kFamily) >= 32) {
        // The outbreak leaves its birth org: every other site gets a
        // beachhead after the WAN route's propagation delay.
        exported = true;
        for (std::size_t t = 1; t < cfg.sites; ++t) {
          const auto route =
              world.network().route_between(site_names[0], site_names[t]);
          world.sim().after(route.latency, [&, t] {
            if (states[t].infected == 0) infect_next(t, "wan-beachhead");
          });
        }
      }
    }
    if (!published &&
        world.tracker().infected_count(kFamily) >= cfg.escalation_threshold) {
      // Noisy enough that a sample reaches an analyst; 3-day turnaround.
      published = true;
      sig_live = world.sim().now() + sim::days(3);
      world.sim().after(sim::days(3), [&] {
        outcome.detections = world.tracker().infected_count(kFamily);
        world.tracker().record(malware::CampaignEventKind::kDetection,
                               kFamily, "av-telemetry", world.sim().now());
      });
    }
  });

  const auto target_hits = [&] {
    std::size_t inside = 0;
    for (std::size_t i = 0; i < fleets[0].count; ++i) {
      if (malware::stuxnet::Stuxnet::find(*hosts[fleets[0].first + i])) {
        ++inside;
      }
    }
    return inside;
  };

  outcome.run_ms = time_ms([&] {
    for (int week = 1; week <= cfg.weeks; ++week) {
      world.sim().run_for(7 * sim::kDay);
      const std::size_t victims = world.tracker().infected_count(kFamily);
      outcome.series.push_back(
          WeekRow{week, victims, victims - target_hits(), published});
    }
  });

  outcome.victims = world.tracker().infected_count(kFamily);
  outcome.target_hits = target_hits();
  outcome.collateral = outcome.victims - outcome.target_hits;
  outcome.dwell = world.tracker().dwell_time(kFamily);
  return outcome;
}

void print_epidemic_series(const EpiOutcome& outcome) {
  std::printf("%-6s %-9s %-12s %-11s\n", "week", "victims", "collateral",
              "sig-found");
  for (const auto& row : outcome.series) {
    std::printf("%-6d %-9zu %-12zu %-11s\n", row.week, row.victims,
                row.collateral, row.sig_published ? "published" : "no");
  }
}

void reproduce_trend_b_at_scale() {
  // One core, sequentially: the whole point is that a 10⁵-host quarter now
  // runs in seconds without a sweep pool.
  const EpiConfig base;
  auto mass = epidemic_run(base);
  EpiConfig targeted_cfg = base;
  targeted_cfg.targeted = true;
  auto targeted = epidemic_run(targeted_cfg);

  std::printf("world: %zu sites x %zu hosts = %zu image-backed hosts "
              "(%zu-host LANs, 8 WAN hubs)\n",
              base.sites, base.hosts_per_site, mass.hosts, std::size_t{256});
  std::printf("build %.0f ms; mass quarter %.0f ms; targeted quarter %.0f ms "
              "(one core)\n",
              mass.build_ms, mass.run_ms, targeted.run_ms);

  benchutil::section("mass posture at 1:1 (spread everywhere, loudly)");
  print_epidemic_series(mass);
  benchutil::section("targeted posture at 1:1 (slow, target org only)");
  print_epidemic_series(targeted);

  benchutil::section("quarter summary (compare trend_b_targeting at 1:30)");
  std::printf("%-26s %-10s %-12s %-12s %-14s\n", "posture", "victims",
              "collateral", "detections", "dwell-time");
  const auto row = [](const char* label, const EpiOutcome& o) {
    const std::string dwell =
        o.dwell < 0 ? "undetected" : sim::format_duration(o.dwell);
    std::printf("%-26s %-10zu %-12zu %-12zu %-14s\n", label, o.victims,
                o.collateral, o.detections, dwell.c_str());
  };
  row("mass", mass);
  row("targeted", targeted);

  if (mass.victims < 90'000) {
    fatal("mass posture reached only " + std::to_string(mass.victims) +
          " victims — expected the paper's ~100k epidemic");
  }
  if (targeted.dwell >= 0 || targeted.collateral != 0) {
    fatal("targeted posture leaked outside the target org");
  }
  std::printf("\nexpected shape: identical to the 30-host trend-b curves — "
              "mass saturates ~100k hosts\nand burns on signature day; the "
              "targeted posture never leaves org0000 and is never\n"
              "detected. Same story, real campaign size.\n");
}

// ---------------------------------------------------------------------------
// Trend-e shape at 1:1 (paper §V-E): the courier-cadence race across an
// air gap, with the full Natanz site (55 cascades x 164 = 9,020 IR-1
// centrifuges, paper §II-D) on the far side and a 2,048-host contractor
// org on the near side.

struct NatanzOutcome {
  std::size_t contractor_infected = 0;
  bool office_crossed = false;
  bool gap_crossed = false;
  sim::Duration time_to_cross = -1;
  std::size_t cascades_injected = 0;
  std::size_t destroyed = 0;
  std::size_t total = 0;
  bool safety_tripped = false;
};

NatanzOutcome natanz_run(sim::Duration courier_cadence, int months,
                         benchutil::Report* report) {
  core::World world(0xe57);
  world.add_internet_landmarks();

  core::NatanzSpec spec;
  spec.cascade_count = 55;  // the full hall: 55 x 164 = 9,020 machines
  auto site = core::build_natanz_site(world, spec);

  core::FleetOptions contractor_options;
  contractor_options.vulns = {exploits::VulnId::kMs10_046_Lnk,
                              exploits::VulnId::kMs10_073_Eop};
  const auto contractor = world.add_fleet(
      winsys::HostArchetype::kEngineeringStation, 2048, "integrator",
      contractor_options);
  const auto& hosts = world.hosts();

  malware::stuxnet::StuxnetConfig config;
  config.beacon_period = sim::days(4000);
  config.spread_period = sim::days(4000);
  config.plc_timing.observe_window = sim::days(13);
  config.plc_timing.cover_duration = sim::days(27);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  // The campaign lands in the contractor org and creeps through it; the
  // courier engineer's workstation is one of the 2,048.
  stuxnet.infect(*hosts[contractor.first], "supply-chain-phish");
  std::size_t infected = 1;
  std::size_t next = 1;
  world.sim().every(sim::kDay, [&] {
    const auto fresh = static_cast<std::size_t>(
        std::ceil(static_cast<double>(infected) * 0.5));
    for (std::size_t k = 0; k < fresh && next < contractor.count; ++k) {
      if (stuxnet.infect(*hosts[contractor.first + next++], "lateral-share")) {
        ++infected;
      }
    }
  });

  // One stick shuttles between the courier's workstation, the Natanz office
  // and the air-gapped engineering laptop — the §V-E vector.
  auto& stick = world.add_usb("integrator-stick");
  core::schedule_usb_courier(
      world, stick,
      {hosts[contractor.first + 40], site.office[0], site.office[3],
       site.eng_laptop},
      courier_cadence);
  for (std::size_t c = 0; c < site.cascades.size(); ++c) {
    const auto project =
        site.step7->create_project("a2" + std::to_string(1 + c));
    core::schedule_engineering_work(world, *site.step7, project,
                                    site.cascades[c],
                                    sim::days(1) + sim::hours(2 * c));
  }

  for (int month = 1; month <= months; ++month) {
    world.sim().run_for(30 * sim::kDay);
    if (report == nullptr) continue;
    report->printf("%-7d %-9zu %-9zu %6zu/%-7zu %-8s\n", month,
                   world.tracker().infected_count(kFamily),
                   stuxnet.plc_strikes(), site.destroyed_centrifuges(),
                   site.total_centrifuges(),
                   site.any_safety_tripped() ? "TRIPPED" : "quiet");
  }

  NatanzOutcome outcome;
  outcome.contractor_infected = infected;
  outcome.office_crossed =
      malware::stuxnet::Stuxnet::find(*site.office[0]) != nullptr;
  if (auto* inf = malware::stuxnet::Stuxnet::find(*site.eng_laptop)) {
    outcome.gap_crossed = true;
    outcome.time_to_cross = inf->infected_at();
  }
  outcome.cascades_injected = stuxnet.plc_strikes();
  outcome.destroyed = site.destroyed_centrifuges();
  outcome.total = site.total_centrifuges();
  outcome.safety_tripped = site.any_safety_tripped();
  return outcome;
}

void reproduce_trend_e_at_scale() {
  benchutil::section(
      "air-gap crossing vs courier cadence (full 9,020-centrifuge plant, "
      "60 days)");
  std::printf("%-22s %-11s %-9s %-8s %-16s %-9s\n", "stick moves every",
              "contractor", "office", "gap", "time-to-cross", "injected");
  const std::vector<sim::Duration> cadences{sim::hours(8), sim::days(2),
                                            sim::days(7), sim::days(20)};
  for (const auto cadence : cadences) {
    const auto outcome = natanz_run(cadence, 2, nullptr);
    const std::string when =
        outcome.gap_crossed ? sim::format_duration(outcome.time_to_cross)
                            : "-";
    std::printf("%-22s %-11zu %-9s %-8s %-16s %zu/55\n",
                sim::format_duration(cadence).c_str(),
                outcome.contractor_infected,
                outcome.office_crossed ? "yes" : "no",
                outcome.gap_crossed ? "yes" : "no", when.c_str(),
                outcome.cascades_injected);
  }

  benchutil::section(
      "nine-month sabotage campaign at 1:1 (8h courier cadence)");
  benchutil::Report report;
  report.printf("%-7s %-9s %-9s %-14s %-8s\n", "month", "infected", "strikes",
                "destroyed", "safety");
  const auto campaign = natanz_run(sim::hours(8), 9, &report);
  report.dump();
  std::printf("\nfull plant: %zu cascade PLCs injected, %zu/%zu centrifuges "
              "destroyed, safety %s\n",
              campaign.cascades_injected, campaign.destroyed, campaign.total,
              campaign.safety_tripped ? "TRIPPED" : "never tripped");
  if (campaign.total != 9'020) {
    fatal("expected the full 9,020-centrifuge Natanz hall, built " +
          std::to_string(campaign.total));
  }
  if (!campaign.gap_crossed || campaign.destroyed == 0) {
    fatal("the 1:1 campaign failed to cross the gap and destroy centrifuges");
  }
  std::printf("\nexpected shape: crossing is a courier-cadence race (trend-e "
              "at 1:30), and the paper's\nthree-level operation now runs "
              "against the real cascade-hall size.\n");
}

// ---------------------------------------------------------------------------
// Memory pass: per-host heap, image-backed vs fully materialized.

struct CowMemory {
  double image_once = 0.0;      // one-time template cost (bytes)
  double cow_per_host = 0.0;    // marginal image-backed host (bytes)
  double mat_per_host = 0.0;    // same content, materialized (bytes)
  double ratio() const {
    return cow_per_host > 0.0 ? mat_per_host / cow_per_host : 0.0;
  }
};

CowMemory measure_cow_memory(std::size_t cow_hosts, std::size_t mat_hosts) {
  CowMemory m;
  {
    core::World world(0x3e3);
    const std::uint64_t before_image = g_heap_bytes.load();
    world.archetype_image(winsys::HostArchetype::kOfficePc);
    m.image_once = static_cast<double>(g_heap_bytes.load() - before_image);
    const std::uint64_t before = g_heap_bytes.load();
    world.add_fleet(winsys::HostArchetype::kOfficePc, cow_hosts, "cow-site");
    m.cow_per_host = static_cast<double>(g_heap_bytes.load() - before) /
                     static_cast<double>(cow_hosts);
  }
  {
    // The pre-refactor substrate: every host owns the full archetype tree
    // and a deep copy of the Microsoft certificate landscape.
    core::World world(0x3e4);
    const std::uint64_t before = g_heap_bytes.load();
    for (std::size_t i = 0; i < mat_hosts; ++i) {
      char name[24];
      std::snprintf(name, sizeof(name), "mat-pc%05zu", i);
      auto& host = world.add_host(
          name, winsys::default_os(winsys::HostArchetype::kOfficePc),
          "mat-lan" + std::to_string(i / 256));
      winsys::populate_archetype(winsys::HostArchetype::kOfficePc, host.fs(),
                                 host.registry());
      world.microsoft().install_into(host.cert_store());
      world.microsoft().anchor_root(host.trust_store());
    }
    m.mat_per_host = static_cast<double>(g_heap_bytes.load() - before) /
                     static_cast<double>(mat_hosts);
  }
  return m;
}

const CowMemory& cow_memory() {
  static const CowMemory m = measure_cow_memory(4096, 256);
  return m;
}

void reproduce_memory() {
  benchutil::section("per-host heap: image + COW delta vs materialized");
  const auto& m = cow_memory();
  std::printf("%-44s %14.0f bytes\n",
              "office-pc template image (one-time, shared)", m.image_once);
  std::printf("%-44s %14.0f bytes\n",
              "image-backed host, marginal (4,096-host fleet)",
              m.cow_per_host);
  std::printf("%-44s %14.0f bytes\n",
              "materialized host (same content, pre-refactor)",
              m.mat_per_host);
  std::printf("%-44s %14.1fx\n", "cow_ratio (gated >= 10x, fatal)",
              m.ratio());
  if (m.ratio() < 10.0) {
    fatal("per-host memory ratio " + std::to_string(m.ratio()) +
          "x is below the 10x gate");
  }

  benchutil::section("archetype image inventory");
  std::printf("%-24s %-18s %s\n", "archetype", "os", "image files");
  core::World world(0x1a6e);
  for (int a = 0; a < winsys::kHostArchetypeCount; ++a) {
    const auto archetype = static_cast<winsys::HostArchetype>(a);
    const auto& image = world.archetype_image(archetype);
    world.add_fleet(archetype, 64, "inventory");
    std::printf("%-24s %-18s %zu\n", winsys::to_string(archetype),
                winsys::to_string(image->os()), image->file_count());
  }
  const std::size_t rss = proc_status_kb("VmRSS");
  const std::size_t hwm = proc_status_kb("VmHWM");
  if (rss > 0) {
    std::printf("\nprocess VmRSS %zu kB, VmHWM %zu kB (whole bench, "
                "reporting only — the gate above\nis the deterministic "
                "allocator count)\n",
                rss, hwm);
  }
}

void reproduce_mega() {
  benchutil::section("mega world: 1,250 sites x 800 = 1,000,000 hosts");
  EpiConfig cfg;
  cfg.sites = 1250;
  cfg.targeted = true;  // bounded infection count; the point here is size
  cfg.weeks = 4;
  const auto outcome = epidemic_run(cfg);
  std::printf("built %zu image-backed hosts in %.0f ms; 4-week targeted "
              "campaign ran in %.0f ms\nvictims %zu (target org only), "
              "VmRSS %zu kB\n",
              outcome.hosts, outcome.build_ms, outcome.run_ms,
              outcome.victims, proc_status_kb("VmRSS"));
}

// ---------------------------------------------------------------------------
// google-benchmark cases (BENCH_epidemic_scaling.json baseline). CI gates
// hosts_per_sec with --floor, heap_per_host with --ceiling and cow_ratio
// with --floor via tools/bench_diff.

void BM_AddFleet10k(benchmark::State& state) {
  for (auto _ : state) {
    core::World world(0xf1ee7);
    const auto fleet =
        world.add_fleet(winsys::HostArchetype::kOfficePc, 10'000, "site");
    benchmark::DoNotOptimize(fleet.count);
  }
  state.counters["hosts_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10'000.0,
      benchmark::Counter::kIsRate);
  state.counters["heap_per_host"] = cow_memory().cow_per_host;
  state.counters["cow_ratio"] = cow_memory().ratio();
}
BENCHMARK(BM_AddFleet10k)->Unit(benchmark::kMillisecond);

void BM_EpidemicQuarter2k(benchmark::State& state) {
  EpiConfig cfg;
  cfg.sites = 8;
  cfg.hosts_per_site = 256;
  cfg.escalation_threshold = 1'500;
  for (auto _ : state) {
    auto outcome = epidemic_run(cfg);
    benchmark::DoNotOptimize(outcome.victims);
  }
}
BENCHMARK(BM_EpidemicQuarter2k)->Unit(benchmark::kMillisecond);

void BM_SiteRouting512(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation;
    net::Network network(simulation);
    std::vector<std::string> names(512);
    for (std::size_t s = 0; s < names.size(); ++s) {
      names[s] = "s" + std::to_string(s);
      network.add_site(names[s]);
    }
    for (std::size_t s = 8; s < names.size(); ++s) {
      network.link_sites(names[s], names[s % 8], sim::hours(6));
    }
    for (std::size_t a = 0; a < 8; ++a) {
      for (std::size_t b = a + 1; b < 8; ++b) {
        network.link_sites(names[a], names[b], sim::hours(12));
      }
    }
    sim::Duration total = 0;
    for (std::size_t t = 0; t < names.size(); ++t) {
      total += network.route_between(names[0], names[t]).latency;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SiteRouting512)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header(
      "EPIDEMIC-SCALING: template images + COW deltas at campaign scale",
      "§II / §V-B / §V-E at 1:1 — ~100k infections, the 9,020-centrifuge "
      "Natanz hall");
  const std::string exe(argv[0]);
  const auto slash = exe.rfind('/');
  const std::string exe_dir =
      slash == std::string::npos ? std::string(".") : exe.substr(0, slash);
  if (benchutil::has_flag(argc, argv, "--print-checksums")) {
    reproduce_identity(exe_dir, /*print_checksums=*/true);
    return 0;
  }
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_identity(exe_dir, /*print_checksums=*/false);
    reproduce_trend_b_at_scale();
    reproduce_trend_e_at_scale();
    reproduce_memory();
    if (benchutil::has_flag(argc, argv, "--mega")) reproduce_mega();
  }
  return benchutil::run_benchmarks(argc, argv);
}
