// TREND-E — §V-E "USB Spreading Malwares".
//
// "USB drives, in addition to zero-day exploits, are emerging as the main
// infection vector in targeted attacks." Two experiments:
//  (1) air-gap crossing probability/time as a function of how often sticks
//      move between the connected and isolated zones, and
//  (2) the LNK exploit vs the (post-hardening) autorun.inf vector, plus the
//      Flame ferry measuring bytes exfiltrated *out* of the gap.

#include "bench_util.hpp"
#include "cnc/attack_center.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct CrossingOutcome {
  bool crossed = false;
  sim::Duration time_to_cross = -1;
};

CrossingOutcome crossing_run(sim::Duration courier_dwell) {
  core::World world(0xe0);
  world.add_internet_landmarks();
  core::FleetSpec office;
  office.count = 5;
  auto fleet = core::make_office_fleet(world, office);
  auto& airgap = world.add_host("airgap-ws", winsys::OsVersion::kWinXp,
                                "cell");
  airgap.make_vulnerable(exploits::VulnId::kMs10_046_Lnk);
  airgap.make_vulnerable(exploits::VulnId::kMs10_073_Eop);

  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker());
  stuxnet.infect(*fleet[0], "beachhead");
  auto& stick = world.add_usb("courier");
  core::schedule_usb_courier(world, stick, {fleet[0], &airgap},
                             courier_dwell);
  world.sim().run_for(sim::days(30));

  CrossingOutcome outcome;
  if (malware::stuxnet::Stuxnet::find(airgap) != nullptr) {
    outcome.crossed = true;
    outcome.time_to_cross =
        world.tracker().first_time(malware::CampaignEventKind::kInfection,
                                   "stuxnet") >= 0
            ? malware::stuxnet::Stuxnet::find(airgap)->infected_at()
            : -1;
  }
  return outcome;
}

struct VectorOutcome {
  std::size_t infected = 0;
};

VectorOutcome vector_run(bool lnk_exploit, bool autorun_open) {
  core::World world(0xe1);
  core::FleetSpec spec;
  spec.count = 10;
  spec.vulns = {exploits::VulnId::kMs10_073_Eop};
  auto fleet = core::make_office_fleet(world, spec);
  for (auto* host : fleet) {
    if (autorun_open) {
      host->make_vulnerable(exploits::VulnId::kAutorunEnabled);
    }
    if (lnk_exploit) {
      host->make_vulnerable(exploits::VulnId::kMs10_046_Lnk);
    }
  }
  world.add_internet_landmarks();
  malware::stuxnet::StuxnetConfig config;
  config.use_spooler = false;
  config.use_shares = false;
  config.max_infections_per_usb = 100;
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);
  auto& stick = world.add_usb("seed");
  stuxnet.arm_usb(stick);
  // One stick passed around the whole office.
  core::schedule_usb_courier(world, stick,
                             {fleet[0], fleet[1], fleet[2], fleet[3],
                              fleet[4], fleet[5], fleet[6], fleet[7],
                              fleet[8], fleet[9]},
                             sim::hours(4));
  world.sim().run_for(sim::days(5));
  return VectorOutcome{world.tracker().infected_count("stuxnet")};
}

std::uint64_t ferry_run(sim::Duration courier_dwell, sim::Duration horizon) {
  core::World world(0xe2);
  world.add_internet_landmarks();
  cnc::AttackCenter center(world.sim(), 0xe3);
  cnc::CncServer server(world.sim(), "cc", {"ferry-c2.net"},
                        center.upload_key());
  server.deploy(world.network());
  center.manage(server);
  center.start_collection_task(sim::hours(4));

  malware::flame::FlameConfig config;
  config.default_domains = {"ferry-c2.net"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  core::FleetSpec connected;
  connected.count = 2;
  auto mules = core::make_office_fleet(world, connected);
  core::FleetSpec isolated;
  isolated.name_prefix = "secret";
  isolated.subnet = "protected-zone";
  isolated.count = 2;
  isolated.internet_pct = 0;
  isolated.documents_per_host = 6;
  auto cell = core::make_office_fleet(world, isolated);

  flame.infect(*mules[0], "drop");
  flame.infect(*cell[0], "drop");
  core::schedule_document_work(world, *cell[0], sim::days(1));
  auto& stick = world.add_usb("office-stick");
  core::schedule_usb_courier(world, stick, {mules[0], cell[0]},
                             courier_dwell);
  world.sim().run_for(horizon);
  return center.archived_bytes();
}

void reproduce() {
  benchutil::section(
      "air-gap crossing vs courier cadence (30-day horizon, LNK vector)");
  std::printf("%-22s %-9s %-16s\n", "stick moves every", "crossed",
              "time-to-cross");
  const std::vector<sim::Duration> dwells{sim::hours(8), sim::days(2),
                                          sim::days(7), sim::days(20),
                                          sim::days(40)};
  const auto crossings = sim::Sweep::map_items(dwells, crossing_run);
  for (std::size_t i = 0; i < dwells.size(); ++i) {
    const auto& outcome = crossings[i];
    const std::string when = outcome.crossed
                                 ? sim::format_duration(outcome.time_to_cross)
                                 : "-";
    std::printf("%-22s %-9s %-16s\n", sim::format_duration(dwells[i]).c_str(),
                outcome.crossed ? "yes" : "no", when.c_str());
  }

  benchutil::section("vector comparison (10 hosts, 5-day stick circulation)");
  std::printf("%-42s %-9s\n", "configuration", "infected");
  struct Case {
    const char* label;
    bool lnk;
    bool autorun;
  };
  const std::vector<Case> cases{
      {"LNK 0-day, autorun hardened (Stuxnet era)", true, false},
      {"no LNK, autorun enabled (pre-2009 worms)", false, true},
      {"both vectors", true, true},
      {"fully patched stick handling", false, false},
  };
  const auto vector_outcomes = sim::Sweep::map_items(
      cases, [](const Case& c) { return vector_run(c.lnk, c.autorun); });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::printf("%-42s %-9zu\n", cases[i].label, vector_outcomes[i].infected);
  }

  benchutil::section("Flame ferry: bytes out of the protected zone (21 days)");
  std::printf("%-22s %-18s\n", "courier cadence", "exfiltrated bytes");
  const std::vector<sim::Duration> ferry_dwells{sim::hours(12), sim::days(3),
                                                sim::days(10)};
  const auto ferried = sim::Sweep::map_items(ferry_dwells, [](sim::Duration d) {
    return ferry_run(d, sim::days(21));
  });
  for (std::size_t i = 0; i < ferry_dwells.size(); ++i) {
    std::printf("%-22s %-18llu\n",
                sim::format_duration(ferry_dwells[i]).c_str(),
                static_cast<unsigned long long>(ferried[i]));
  }
  std::printf("\nexpected shape: crossing is a courier-cadence race; the LNK "
              "0-day replaces the closed autorun channel; exfil volume "
              "scales with stick traffic.\n");
}

void BM_CourierCrossing(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = crossing_run(sim::days(state.range(0)));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CourierCrossing)->Arg(1)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-E: USB drives as the main targeted vector",
                    "Section V-E");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
