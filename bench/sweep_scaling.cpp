// SWEEP-SCALING — the perf story behind the framework itself.
//
// Two claims, both measured here:
//  (1) SweepRunner turns a 64-campaign Monte-Carlo sweep into a parallel
//      fan-out that is *bit-identical* to the serial loop it replaced: the
//      per-run trace fingerprints (an order-sensitive hash over every event
//      field) must match slot for slot, on any worker count.
//  (2) The interned TraceLog is ≥2x faster than the seed's string-per-event
//      implementation on the record+query hot path. The seed design is kept
//      below as LegacyTraceLog, scans and copies included, so the ratio is
//      measured against the real baseline rather than remembered.

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace cyd;

namespace {

// ---------------------------------------------------------------------------
// (1) the parallel sweep: 64 independent 30-day campaigns

struct RunResult {
  std::size_t infected = 0;
  std::uint64_t trace_fingerprint = 0;
  std::size_t trace_events = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult campaign_run(std::uint64_t seed) {
  core::World world(seed);
  world.add_internet_landmarks();

  core::FleetSpec spec;
  spec.count = 12;
  spec.vulns = {exploits::VulnId::kMs10_046_Lnk};
  auto fleet = core::make_office_fleet(world, spec);

  malware::stuxnet::StuxnetConfig config;
  config.spread_period = sim::hours(6);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);
  auto& stick = world.add_usb("seed-stick");
  stuxnet.arm_usb(stick);
  core::schedule_usb_courier(world, stick, {fleet[0], fleet[4], fleet[9]},
                             sim::hours(8));
  world.sim().run_for(sim::days(30));

  return RunResult{world.tracker().infected_count("stuxnet"),
                   world.sim().trace().fingerprint(),
                   world.sim().trace().size()};
}

void reproduce_sweep() {
  constexpr std::size_t kRuns = 64;
  constexpr std::uint64_t kBaseSeed = 0x5ca1e;

  benchutil::section("64-campaign sweep: serial loop vs SweepRunner");

  // The serial baseline every parallel schedule must reproduce exactly.
  const auto serial_start = std::chrono::steady_clock::now();
  std::vector<RunResult> serial(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    serial[i] = campaign_run(sim::derive_seed(kBaseSeed, i));
  }
  const double serial_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - serial_start)
          .count();

  std::size_t total_events = 0;
  for (const auto& r : serial) total_events += r.trace_events;
  std::printf("serial loop: %zu runs, %.0f ms (%.1f ms/run), %zu trace "
              "events total\n",
              kRuns, serial_ms, serial_ms / kRuns, total_events);

  std::printf("\n%-10s %-12s %-10s %-14s\n", "workers", "wall-ms",
              "speedup", "bit-identical");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> worker_counts{1};
  for (unsigned w = 2; w < hw; w *= 2) worker_counts.push_back(w);
  if (hw > 1) worker_counts.push_back(hw);

  bool all_identical = true;
  for (const unsigned workers : worker_counts) {
    sim::SweepRunner runner(sim::SweepOptions{.workers = workers});
    const auto parallel = runner.map(
        kRuns, kBaseSeed,
        [](const sim::SweepRun& run) { return campaign_run(run.seed); });
    const bool identical = parallel == serial;
    all_identical = all_identical && identical;
    const auto& stats = runner.last_stats();
    std::printf("%-10u %-12.0f %-10.2f %-14s\n", runner.workers(),
                stats.wall_ms, serial_ms / stats.wall_ms,
                identical ? "yes" : "NO — BUG");
  }

  if (!all_identical) {
    std::printf("\nFATAL: a parallel schedule diverged from the serial "
                "baseline.\n");
    std::exit(1);
  }
  std::printf("\nevery schedule reproduced the serial results bit-for-bit "
              "(order-sensitive fingerprints over %zu trace events).\n",
              total_events);
  if (hw < 4) {
    std::printf("note: only %u hardware thread(s) here — the ≥3x speedup "
                "target needs a 4+-core machine; identity holds on any.\n",
                hw);
  }
}

// ---------------------------------------------------------------------------
// (2) TraceLog hot path: interned log vs the seed's string-per-event design

/// The TraceLog this repo shipped with, verbatim in design: every event owns
/// four std::strings, every query scans the whole vector and copies matches.
class LegacyTraceLog {
 public:
  struct Event {
    sim::TimePoint time = 0;
    sim::TraceCategory category = sim::TraceCategory::kSim;
    std::string actor;
    std::string action;
    std::string detail;
  };

  void record(sim::TimePoint time, sim::TraceCategory category,
              std::string actor, std::string action, std::string detail) {
    events_.push_back(Event{time, category, std::move(actor),
                            std::move(action), std::move(detail)});
  }

  /// Same shape as TraceLog::for_each_action, but routed through the seed's
  /// copying query so the baseline keeps paying the scan + copy it shipped
  /// with.
  template <class Fn>
  void for_each_action(const std::string& action, Fn&& fn) const {
    for (const auto& e : by_action(action)) fn(e);
  }

  std::size_t count_action(const std::string& action) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.action == action) ++n;
    }
    return n;
  }

  std::size_t size() const { return events_.size(); }

 private:
  std::vector<Event> by_action(const std::string& action) const {
    std::vector<Event> out;
    for (const auto& e : events_) {
      if (e.action == action) out.push_back(e);
    }
    return out;
  }

  std::vector<Event> events_;
};

// A realistic action mix: a handful of hot actions, many actors, varied
// detail payloads — the shape a 30-day campaign actually produces.
constexpr const char* kActions[] = {
    "file.write", "file.delete",   "reg.set",     "proc.start",
    "dns.lookup", "http.internet", "usb.autorun", "scada.scan"};
constexpr std::size_t kActionCount = 8;

template <class Log>
std::size_t exercise_log(Log& log, std::size_t events) {
  for (std::size_t i = 0; i < events; ++i) {
    log.record(static_cast<sim::TimePoint>(i),
               sim::TraceCategory::kFile, "host-" + std::to_string(i % 40),
               kActions[i % kActionCount],
               "payload-" + std::to_string(i % 97));
  }
  // The analysis pass: count the hot actions, walk one of them — what the
  // sandbox distillation + campaign summaries do per run. Uses only the
  // count_*/for_each_* surface; the deprecated copying queries stay inside
  // LegacyTraceLog where they are the thing being measured.
  std::size_t checksum = 0;
  for (std::size_t q = 0; q < kActionCount; ++q) {
    checksum += log.count_action(kActions[q]);
  }
  std::size_t writes = 0;
  log.for_each_action("file.write", [&](const auto& event) {
    (void)event;
    ++writes;
  });
  checksum += writes;
  return checksum;
}

void reproduce_trace_throughput() {
  constexpr std::size_t kEvents = 200'000;
  benchutil::section("TraceLog hot path: interned vs seed implementation");

  const auto time_one = [](auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  std::size_t legacy_checksum = 0;
  const double legacy_ms = time_one([&] {
    LegacyTraceLog log;
    legacy_checksum = exercise_log(log, kEvents);
  });
  std::size_t interned_checksum = 0;
  const double interned_ms = time_one([&] {
    sim::TraceLog log;
    log.reserve(kEvents, kEvents * 12);
    interned_checksum = exercise_log(log, kEvents);
  });

  if (legacy_checksum != interned_checksum) {
    std::printf("FATAL: implementations disagree (%zu vs %zu)\n",
                legacy_checksum, interned_checksum);
    std::exit(1);
  }

  const double legacy_rate = kEvents / legacy_ms * 1000.0;
  const double interned_rate = kEvents / interned_ms * 1000.0;
  std::printf("%-28s %-12s %-14s\n", "implementation", "ms", "events/sec");
  std::printf("%-28s %-12.1f %-14.0f\n", "seed (string-per-event)", legacy_ms,
              legacy_rate);
  std::printf("%-28s %-12.1f %-14.0f\n", "interned + posting lists",
              interned_ms, interned_rate);
  std::printf("\nrecord+query throughput ratio: %.1fx (target: >=2x)\n",
              interned_rate / legacy_rate);
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines)

void BM_CampaignSweepSerial(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<RunResult> results(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      results[i] = campaign_run(sim::derive_seed(1, i));
    }
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_CampaignSweepSerial)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CampaignSweepParallel(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  sim::SweepRunner runner;
  for (auto _ : state) {
    auto results = runner.map(runs, 1, [](const sim::SweepRun& run) {
      return campaign_run(run.seed);
    });
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_CampaignSweepParallel)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_TraceRecordQueryLegacy(benchmark::State& state) {
  for (auto _ : state) {
    LegacyTraceLog log;
    auto checksum = exercise_log(log, 50'000);
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_TraceRecordQueryLegacy)->Unit(benchmark::kMillisecond);

void BM_TraceRecordQueryInterned(benchmark::State& state) {
  for (auto _ : state) {
    sim::TraceLog log;
    log.reserve(50'000, 50'000 * 12);
    auto checksum = exercise_log(log, 50'000);
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_TraceRecordQueryInterned)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("SWEEP-SCALING: parallel Monte-Carlo + trace hot path",
                    "framework performance, not a paper figure");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_sweep();
    reproduce_trace_throughput();
  }
  return benchutil::run_benchmarks(argc, argv);
}
