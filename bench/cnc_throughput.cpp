// CNC-THROUGHPUT — the C&C request pipeline vs the retained seed server.
//
// The seed CncServer paid for every beacon with an O(clients) select_where
// scan over string-map rows, two format_time allocations, stoull/to_string
// round-trips, and an owned-copy decode of the request body. This bench
// retains that hot path verbatim (SeedServer below, simulation-free so the
// comparison is handler-vs-handler) and race-checks cnc::RequestEngine
// against it:
//
//  (1) Identity, fatally asserted: over identical beacon streams the seed
//      path and the pipeline produce bit-identical response chains and
//      state checksums — the speedup is a refactor, not a behavior change.
//      In the sharded storm the merged checksums must also match at every
//      worker count (single-queue reference, 1, 2, hw workers).
//  (2) Single-thread throughput: >=5x over the seed path, fatally asserted;
//      `beacons_per_sec` exported as a bench_diff floor.
//  (3) Storm scaling: one engine per site shard on sim::ShardedScheduler,
//      >=2x over the single-queue run on 4+ cores (fatal when the cores
//      exist); `cnc_storm_speedup_4core` exported on 4+-core machines.
//  (4) Storm + purge tail latency: per-beacon p50/p99/max with the pickup
//      and purge cadence running; the O(pending) contract is gated
//      structurally (total purge scan work <= purged + ticks, fatal) and
//      `p99_handle_ns` exported as a bench_diff ceiling.

#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cnc/crypto.hpp"
#include "cnc/database.hpp"
#include "cnc/pipeline.hpp"
#include "cnc/wire.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_scheduler.hpp"
#include "sim/sweep.hpp"
#include "sim/time.hpp"

using namespace cyd;

namespace {

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

[[noreturn]] void fatal(const char* what) {
  std::printf("\nFATAL: %s\n", what);
  std::exit(1);
}

// ---------------------------------------------------------------------------
// The retained seed path: the pre-pipeline CncServer request handling, kept
// verbatim minus the Simulation/TraceLog hooks (time is a parameter) so both
// sides measure exactly the handler. Database rows are updated eagerly per
// beacon, clients are found by select_where scans, pickup and purge walk the
// whole entries vector — the costs the pipeline removes.

class SeedServer {
 public:
  net::HttpResponse handle(const net::HttpRequest& request,
                           sim::TimePoint now) {
    net::HttpResponse response = dispatch(request, now);
    response_chain_ =
        cnc::RequestEngine::fold_response(response_chain_, response);
    return response;
  }

  std::vector<cnc::Entry> take_new_entries() {
    std::vector<cnc::Entry> out;
    for (auto& entry : entries_) {
      if (!entry.retrieved) {
        entry.retrieved = true;
        out.push_back(entry);
      }
    }
    return out;
  }

  std::size_t purge_retrieved(sim::TimePoint cutoff) {
    const std::size_t before = entries_.size();
    std::erase_if(entries_, [cutoff](const cnc::Entry& e) {
      return e.retrieved && e.received_at <= cutoff;
    });
    return before - entries_.size();
  }

  void push_news(cnc::Payload payload) {
    news_.emplace_back(next_news_seq_++, std::move(payload));
  }

  void push_ad(const std::string& client_id, cnc::Payload payload) {
    ads_[client_id].push_back(std::move(payload));
  }

  std::uint64_t response_chain() const { return response_chain_; }

  /// Same digest steps as RequestEngine::state_checksum, computed from the
  /// seed-side representation (rows in id order == first-contact order).
  std::uint64_t state_checksum() const {
    std::uint64_t h = cnc::kChecksumBasis;
    h = cnc::checksum_mix(h, get_news_);
    h = cnc::checksum_mix(h, uploads_);
    h = cnc::checksum_mix(h, upload_bytes_);
    h = cnc::checksum_mix(h, rejected_);
    std::uint64_t pending = 0;
    for (const auto& [client, payloads] : ads_) pending += payloads.size();
    h = cnc::checksum_mix(h, pending);
    if (const cnc::Table* clients = db_.find_table("clients")) {
      for (const auto& [id, row] : clients->rows()) {
        h = cnc::checksum_mix_bytes(h, row.at("client_id"));
        h = cnc::checksum_mix_bytes(h, row.at("type"));
        h = cnc::checksum_mix(h, std::stoull(row.at("contacts")));
        h = cnc::checksum_mix(h, std::stoull(row.at("last_news_seq")));
      }
    }
    std::uint64_t retrieved = 0;
    for (const cnc::Entry& e : entries_) {
      h = cnc::checksum_mix_bytes(h, e.client_id);
      h = cnc::checksum_mix_bytes(h, e.data_name);
      h = cnc::checksum_mix(h, e.blob.key_id);
      h = cnc::checksum_mix_bytes(h, e.blob.ciphertext);
      h = cnc::checksum_mix(h, static_cast<std::uint64_t>(e.received_at));
      h = cnc::checksum_mix(h, e.retrieved ? 1u : 0u);
      h = cnc::checksum_mix(h, e.id);
      if (e.retrieved) ++retrieved;
    }
    h = cnc::checksum_mix(h, retrieved);  // == the pipeline's watermark
    h = cnc::checksum_mix(h, news_.size());
    h = cnc::checksum_mix(h, next_news_seq_);
    h = cnc::checksum_mix(h, next_entry_id_);
    return h;
  }

 private:
  net::HttpResponse dispatch(const net::HttpRequest& request,
                             sim::TimePoint now) {
    if (request.path != "/newsforyou") {
      ++rejected_;
      return net::HttpResponse{404, {}};
    }
    auto cmd = request.params.find("cmd");
    if (cmd == request.params.end()) {
      ++rejected_;
      return net::HttpResponse{400, {}};
    }
    if (cmd->second == "GET_NEWS") return handle_get_news(request, now);
    if (cmd->second == "ADD_ENTRY") return handle_add_entry(request, now);
    ++rejected_;
    return net::HttpResponse{400, {}};
  }

  cnc::Row* client_row(const std::string& client_id, const std::string& type,
                       sim::TimePoint now) {
    auto& clients = db_.table("clients");
    auto matches = clients.select_where("client_id", client_id);
    if (!matches.empty()) {
      cnc::Row* row = clients.find(matches.front().first);
      (*row)["last_seen"] = sim::format_time(now);
      (*row)["contacts"] = std::to_string(std::stoull((*row)["contacts"]) + 1);
      return row;
    }
    cnc::Row row;
    row["client_id"] = client_id;
    row["type"] = type;
    row["first_seen"] = sim::format_time(now);
    row["last_seen"] = row["first_seen"];
    row["contacts"] = "1";
    row["last_news_seq"] = "0";
    const auto id = clients.insert(std::move(row));
    return clients.find(id);
  }

  net::HttpResponse handle_get_news(const net::HttpRequest& request,
                                    sim::TimePoint now) {
    auto client_it = request.params.find("client");
    if (client_it == request.params.end()) {
      ++rejected_;
      return net::HttpResponse{400, {}};
    }
    const std::string& client_id = client_it->second;
    auto type_it = request.params.find("type");
    const std::string type =
        type_it == request.params.end() ? cnc::kClientTypeFl : type_it->second;

    ++get_news_;
    access_log_.push_back(sim::format_time(now) + " GET_NEWS client=" +
                          client_id + " type=" + type);
    cnc::Row* row = client_row(client_id, type, now);

    std::vector<cnc::Payload> delivery;
    if (auto it = ads_.find(client_id); it != ads_.end()) {
      for (auto& payload : it->second) delivery.push_back(std::move(payload));
      ads_.erase(it);
    }
    std::uint64_t last_seen = std::stoull((*row)["last_news_seq"]);
    for (const auto& [seq, payload] : news_) {
      if (seq > last_seen) {
        delivery.push_back(payload);
        last_seen = seq;
      }
    }
    (*row)["last_news_seq"] = std::to_string(last_seen);
    return net::HttpResponse{200, cnc::serialize_payloads(delivery)};
  }

  net::HttpResponse handle_add_entry(const net::HttpRequest& request,
                                     sim::TimePoint now) {
    auto client_it = request.params.find("client");
    if (client_it == request.params.end()) {
      ++rejected_;
      return net::HttpResponse{400, {}};
    }
    const std::string& client_id = client_it->second;
    auto type_it = request.params.find("type");
    const std::string type =
        type_it == request.params.end() ? cnc::kClientTypeFl : type_it->second;

    const std::string_view body = request.body;
    if (body.size() < 8 || body.substr(0, 4) != "UPL1") {
      ++rejected_;
      return net::HttpResponse{400, {}};
    }
    std::string data_name;
    cnc::EncryptedBlob blob;
    try {
      const std::uint32_t name_len = common::get_u32(body, 4);
      if (8 + name_len > body.size()) {
        ++rejected_;
        return net::HttpResponse{400, {}};
      }
      data_name = std::string(body.substr(8, name_len));
      auto parsed = cnc::EncryptedBlob::parse(body.substr(8 + name_len));
      if (!parsed) {
        ++rejected_;
        return net::HttpResponse{400, {}};
      }
      blob = std::move(*parsed);
    } catch (const std::out_of_range&) {
      ++rejected_;
      return net::HttpResponse{400, {}};
    }

    client_row(client_id, type, now);
    cnc::Entry entry;
    entry.id = next_entry_id_++;
    entry.client_id = client_id;
    entry.client_type = type;
    entry.data_name = data_name;
    entry.received_at = now;
    upload_bytes_ += blob.ciphertext.size();
    ++uploads_;
    entry.blob = std::move(blob);
    entries_.push_back(std::move(entry));
    access_log_.push_back(sim::format_time(now) + " ADD_ENTRY client=" +
                          client_id + " name=" + data_name);
    return net::HttpResponse{200, "OK"};
  }

  cnc::Database db_;
  std::map<std::string, std::vector<cnc::Payload>> ads_;
  std::vector<std::pair<std::uint64_t, cnc::Payload>> news_;
  std::uint64_t next_news_seq_ = 1;
  std::vector<cnc::Entry> entries_;
  std::uint64_t next_entry_id_ = 1;
  std::vector<std::string> access_log_;
  std::uint64_t get_news_ = 0;
  std::uint64_t uploads_ = 0;
  std::uint64_t upload_bytes_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t response_chain_ = cnc::kChecksumBasis;
};

// ---------------------------------------------------------------------------
// Deterministic beacon streams. An op is either a wave of requests (one
// beacon burst hitting the server at `at`) or the attack-center cadence
// (pickup + purge). Ops are generated in strictly increasing time order per
// stream, so replaying the vector serially and scheduling it onto a shard
// execute identically.

struct Op {
  sim::TimePoint at = 0;
  std::vector<net::HttpRequest> requests;  // empty for pickup ops
  sim::TimePoint purge_cutoff = 0;
  bool pickup = false;
};

struct OpStream {
  std::vector<Op> ops;
  std::size_t beacons = 0;
};

OpStream make_stream(std::uint64_t seed, std::size_t clients,
                     std::size_t waves, std::size_t wave_size,
                     sim::Duration wave_gap, std::size_t pickup_every,
                     const cnc::CncPublicKey& upload_key,
                     const std::string& client_prefix) {
  OpStream stream;
  sim::Rng rng(seed);
  for (std::size_t w = 0; w < waves; ++w) {
    Op wave;
    wave.at = static_cast<sim::TimePoint>(w + 1) * wave_gap;
    wave.requests.reserve(wave_size);
    for (std::size_t i = 0; i < wave_size; ++i) {
      net::HttpRequest r;
      r.path = "/newsforyou";
      const std::string client =
          client_prefix +
          std::to_string(rng.uniform_int(
              0, static_cast<std::int64_t>(clients) - 1));
      const double roll = rng.next_double();
      if (roll < 0.20) {
        r.method = "POST";
        r.params = {{"cmd", "ADD_ENTRY"}, {"client", client}, {"type", "FL"}};
        r.body = cnc::serialize_entry_upload(
            "f" + std::to_string(w) + "-" + std::to_string(i),
            cnc::encrypt_for(upload_key,
                             "loot " + std::to_string(rng.next_u64())));
      } else if (roll < 0.23) {
        r.path = roll < 0.215 ? "/wrong" : "/newsforyou";  // 404s and 400s
        r.params = {{"cmd", roll < 0.215 ? "GET_NEWS" : "DANCE"},
                    {"client", client}};
      } else {
        r.params = {{"cmd", "GET_NEWS"},
                    {"client", client},
                    {"type", rng.bernoulli(0.5) ? "FL" : "SP"}};
      }
      wave.requests.push_back(std::move(r));
      ++stream.beacons;
    }
    stream.ops.push_back(std::move(wave));
    if (pickup_every != 0 && (w + 1) % pickup_every == 0) {
      Op pickup;
      pickup.at = stream.ops.back().at + wave_gap / 2;
      pickup.pickup = true;
      pickup.purge_cutoff = pickup.at - 2 * sim::kHour;
      stream.ops.push_back(std::move(pickup));
    }
  }
  return stream;
}

struct RunResult {
  double ms = 0.0;
  std::uint64_t response_chain = 0;
  std::uint64_t state_checksum = 0;
};

RunResult run_seed(const OpStream& stream) {
  SeedServer server;
  server.push_news(cnc::Payload{"mod-broadcast", "broadcast module bytes"});
  RunResult result;
  result.ms = time_ms([&] {
    for (const Op& op : stream.ops) {
      if (op.pickup) {
        server.take_new_entries();
        server.purge_retrieved(op.purge_cutoff);
      } else {
        for (const net::HttpRequest& r : op.requests) server.handle(r, op.at);
      }
    }
  });
  result.response_chain = server.response_chain();
  result.state_checksum = server.state_checksum();
  return result;
}

RunResult run_pipeline(const OpStream& stream) {
  cnc::RequestEngine engine;
  engine.push_news(cnc::Payload{"mod-broadcast", "broadcast module bytes"});
  RunResult result;
  result.ms = time_ms([&] {
    for (const Op& op : stream.ops) {
      if (op.pickup) {
        engine.take_new_entries();
        engine.purge_retrieved(op.purge_cutoff);
      } else {
        engine.handle_batch(op.requests, op.at);
      }
    }
  });
  result.response_chain = engine.response_chain();
  result.state_checksum = engine.state_checksum();
  return result;
}

void check_single_thread_identity(const RunResult& seed,
                                  const RunResult& pipeline) {
  if (pipeline.response_chain != seed.response_chain) {
    fatal("pipeline response chain diverged from the seed path");
  }
  if (pipeline.state_checksum != seed.state_checksum) {
    fatal("pipeline state checksum diverged from the seed path");
  }
}

// ---------------------------------------------------------------------------
// The sharded beacon storm: one engine per site shard, one stream per shard,
// merged deterministically in shard index order.

std::vector<OpStream> make_storm_streams(std::size_t shards,
                                         std::size_t clients_per_shard,
                                         std::size_t waves,
                                         std::size_t wave_size,
                                         const cnc::CncPublicKey& upload_key) {
  std::vector<OpStream> streams;
  streams.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    streams.push_back(make_stream(
        sim::derive_seed(0xc2c570, shard), clients_per_shard, waves,
        wave_size, sim::minutes(10), /*pickup_every=*/36, upload_key,
        "c" + std::to_string(shard) + "-"));
  }
  return streams;
}

struct StormResult {
  cnc::StormMerge merge;
  double ms = 0.0;
};

/// Serial seed-path reference for the storm: one SeedServer per shard, each
/// replaying its stream, merged with the same shard-order fold the pipeline
/// uses.
StormResult run_storm_seed(const std::vector<OpStream>& streams) {
  StormResult result;
  std::vector<std::uint64_t> chains, states;
  result.ms = time_ms([&] {
    for (const OpStream& stream : streams) {
      SeedServer server;
      server.push_news(
          cnc::Payload{"mod-broadcast", "broadcast module bytes"});
      for (const Op& op : stream.ops) {
        if (op.pickup) {
          server.take_new_entries();
          server.purge_retrieved(op.purge_cutoff);
        } else {
          for (const net::HttpRequest& r : op.requests) server.handle(r, op.at);
        }
      }
      chains.push_back(server.response_chain());
      states.push_back(server.state_checksum());
    }
  });
  result.merge.response_checksum = cnc::kChecksumBasis;
  result.merge.state_checksum = cnc::kChecksumBasis;
  for (std::size_t k = 0; k < chains.size(); ++k) {
    result.merge.response_checksum =
        cnc::checksum_mix(result.merge.response_checksum, chains[k]);
    result.merge.state_checksum =
        cnc::checksum_mix(result.merge.state_checksum, states[k]);
  }
  return result;
}

StormResult run_storm_pipeline(const std::vector<OpStream>& streams,
                               sim::ShardedScheduler::Mode mode,
                               unsigned workers) {
  const std::size_t shards = streams.size();
  std::vector<cnc::RequestEngine> engines(shards);
  for (auto& engine : engines) {
    engine.push_news(cnc::Payload{"mod-broadcast", "broadcast module bytes"});
  }

  // Ring of 6-hour WAN links. Beacons terminate at their site's server, so
  // there is no cross-shard traffic; the channels exist to give the
  // conservative windows a realistic lookahead instead of the unbounded
  // isolated-shard fast path.
  sim::ShardedScheduler scheduler(benchutil::ring_plan(shards),
                                  sim::ShardedScheduler::Options{mode, workers});

  sim::TimePoint horizon = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    cnc::RequestEngine* engine = &engines[shard];
    for (const Op& op : streams[shard].ops) {
      horizon = std::max(horizon, op.at);
      const Op* bound = &op;
      if (op.pickup) {
        scheduler.schedule(shard, op.at, [engine, bound] {
          engine->take_new_entries();
          engine->purge_retrieved(bound->purge_cutoff);
        });
      } else {
        scheduler.schedule(shard, op.at, [engine, bound] {
          engine->handle_batch(bound->requests, bound->at);
        });
      }
    }
  }

  StormResult result;
  result.ms = time_ms([&] { scheduler.run_until(horizon + 1); });
  result.merge = cnc::merge_storm(engines);
  return result;
}

void check_storm_identity(const StormResult& reference,
                          const StormResult& candidate, const char* label) {
  if (candidate.merge.response_checksum != reference.merge.response_checksum) {
    std::printf("  (%s)\n", label);
    fatal("storm merged response checksum diverged");
  }
  if (candidate.merge.state_checksum != reference.merge.state_checksum) {
    std::printf("  (%s)\n", label);
    fatal("storm merged state checksum diverged");
  }
}

// ---------------------------------------------------------------------------
// Storm + purge tail latency: per-beacon handle() latency percentiles with
// the pickup/purge cadence running, plus the structural O(pending) gate.

struct LatencyResult {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
  std::uint64_t purged = 0;
  std::uint64_t ticks = 0;
  std::uint64_t purge_scanned = 0;
};

LatencyResult run_latency(const OpStream& stream) {
  cnc::RequestEngine engine;
  engine.push_news(cnc::Payload{"mod-broadcast", "broadcast module bytes"});
  std::vector<double> samples;
  samples.reserve(stream.beacons);
  LatencyResult result;
  for (const Op& op : stream.ops) {
    if (op.pickup) {
      engine.take_new_entries();
      result.purged += engine.purge_retrieved(op.purge_cutoff);
      ++result.ticks;
    } else {
      for (const net::HttpRequest& r : op.requests) {
        const auto start = std::chrono::steady_clock::now();
        engine.handle(r, op.at);
        samples.push_back(std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      }
    }
  }
  result.purge_scanned = engine.scan_stats().total_purge_scanned;
  std::sort(samples.begin(), samples.end());
  if (!samples.empty()) {
    result.p50_ns = samples[samples.size() / 2];
    result.p99_ns = samples[samples.size() * 99 / 100];
    result.max_ns = samples.back();
  }
  return result;
}

void check_purge_cost(const LatencyResult& r) {
  // Each purge examines at most purged-this-tick + 1 entries; summed over
  // the run that is <= total purged + one probe per tick. A full-scan
  // regression makes purge_scanned proportional to resident history and
  // blows through this immediately.
  if (r.purge_scanned > r.purged + r.ticks) {
    fatal("purge scan work exceeds purged + ticks — O(pending) contract broken");
  }
}

// ---------------------------------------------------------------------------
// Reproduction pass

void reproduce_cnc_throughput() {
  const auto key_pair = cnc::CncKeyPair::generate(0xc2c0ffee);
  const auto upload_key = cnc::public_half(key_pair);

  benchutil::section("single-thread: zero-copy pipeline vs retained seed path");
  const OpStream flat =
      make_stream(0xbea7, /*clients=*/800, /*waves=*/400, /*wave_size=*/150,
                  sim::kMinute, /*pickup_every=*/20, upload_key, "c-");
  std::printf("%zu beacons, 800 clients, pickup+purge every 20 waves\n",
              flat.beacons);
  const RunResult seed = run_seed(flat);
  const RunResult pipeline = run_pipeline(flat);
  check_single_thread_identity(seed, pipeline);
  const double speedup = seed.ms / pipeline.ms;
  std::printf("seed path:  %8.1f ms  (%.0f beacons/s)\n", seed.ms,
              1000.0 * static_cast<double>(flat.beacons) / seed.ms);
  std::printf("pipeline:   %8.1f ms  (%.0f beacons/s)\n", pipeline.ms,
              1000.0 * static_cast<double>(flat.beacons) / pipeline.ms);
  std::printf("speedup %.1fx; responses and state bit-identical\n", speedup);
  if (speedup < 5.0) {
    fatal("single-thread pipeline speedup below the 5x floor");
  }

  benchutil::section("sharded beacon storm (8 site shards)");
  const auto streams = make_storm_streams(/*shards=*/8,
                                          /*clients_per_shard=*/200,
                                          /*waves=*/400, /*wave_size=*/50,
                                          upload_key);
  std::size_t total = 0;
  for (const auto& s : streams) total += s.beacons;
  std::printf("%zu beacons across 8 shards; 6h WAN ring lookahead\n", total);

  const StormResult storm_seed = run_storm_seed(streams);
  const StormResult single =
      run_storm_pipeline(streams, sim::ShardedScheduler::Mode::kSingleQueue, 1);
  check_storm_identity(storm_seed, single, "single-queue vs serial seed");
  std::printf("serial seed path: %8.1f ms\n", storm_seed.ms);
  std::printf("single-queue:     %8.1f ms (pipeline reference)\n", single.ms);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> worker_counts{1, 2};
  if (hw > 2) worker_counts.push_back(hw);
  std::printf("\n%-10s %-12s %-10s %-18s\n", "workers", "wall-ms", "speedup",
              "merged-checksums");
  double best_speedup = 0.0;
  for (const unsigned workers : worker_counts) {
    const StormResult sharded = run_storm_pipeline(
        streams, sim::ShardedScheduler::Mode::kSharded, workers);
    check_storm_identity(storm_seed, sharded, "sharded vs serial seed");
    check_storm_identity(single, sharded, "sharded vs single-queue");
    const double s = single.ms / sharded.ms;
    best_speedup = std::max(best_speedup, s);
    std::printf("%-10u %-12.1f %-10.2f %-18s\n", workers, sharded.ms, s,
                "yes (bit-identical)");
  }
  std::printf("\nevery run (seed, single-queue, sharded x%zu) merged to "
              "identical response/state checksums.\n",
              worker_counts.size());
  if (hw >= 4) {
    std::printf("best storm speedup %.2fx on %u cores (target: >=2x)\n",
                best_speedup, hw);
    if (best_speedup < 2.0) {
      fatal("sharded storm speedup below the 2x floor on 4+ cores");
    }
  } else {
    std::printf("note: only %u hardware thread(s) — the >=2x storm target "
                "needs a 4+-core machine; identity holds on any.\n",
                hw);
  }

  benchutil::section("storm + purge: per-beacon latency tail");
  const OpStream tail =
      make_stream(0x7a11, /*clients=*/500, /*waves=*/300, /*wave_size=*/100,
                  sim::kMinute, /*pickup_every=*/12, upload_key, "c-");
  const LatencyResult lat = run_latency(tail);
  check_purge_cost(lat);
  std::printf("%zu beacons with pickup+purge every 12 waves\n", tail.beacons);
  std::printf("handle latency: p50 %.0f ns, p99 %.0f ns, max %.0f ns\n",
              lat.p50_ns, lat.p99_ns, lat.max_ns);
  std::printf("purge work: %llu scanned for %llu purged over %llu ticks "
              "(O(pending) gate: scanned <= purged + ticks)\n",
              static_cast<unsigned long long>(lat.purge_scanned),
              static_cast<unsigned long long>(lat.purged),
              static_cast<unsigned long long>(lat.ticks));
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines)

OpStream smoke_stream(const cnc::CncPublicKey& upload_key) {
  // 400 clients keeps the seed path's O(clients) scan cost dominant, so the
  // cnc_seed_speedup floor sits well clear of runner noise.
  return make_stream(0x57a7e, /*clients=*/400, /*waves=*/60, /*wave_size=*/100,
                     sim::kMinute, /*pickup_every=*/15, upload_key, "c-");
}

const cnc::CncPublicKey& bench_key() {
  static const cnc::CncPublicKey key =
      cnc::public_half(cnc::CncKeyPair::generate(0xc2c0ffee));
  return key;
}

void BM_CncSeedBaseline(benchmark::State& state) {
  const OpStream stream = smoke_stream(bench_key());
  for (auto _ : state) {
    const RunResult r = run_seed(stream);
    benchmark::DoNotOptimize(r.state_checksum);
  }
}
BENCHMARK(BM_CncSeedBaseline)->Unit(benchmark::kMillisecond);

void BM_CncPipeline(benchmark::State& state) {
  const OpStream stream = smoke_stream(bench_key());
  double total_ms = 0.0;
  std::size_t beacons = 0;
  for (auto _ : state) {
    const RunResult r = run_pipeline(stream);
    total_ms += r.ms;
    beacons += stream.beacons;
    benchmark::DoNotOptimize(r.state_checksum);
  }
  // Hard bench_diff floor: the decode+handle rate a single thread sustains.
  // The CI floor sits ~10x under the reference box's rate (see ci.yml).
  if (total_ms > 0.0) {
    state.counters["beacons_per_sec"] =
        1000.0 * static_cast<double>(beacons) / total_ms;
  }
}
BENCHMARK(BM_CncPipeline)->Unit(benchmark::kMillisecond);

void BM_CncSpeedup(benchmark::State& state) {
  const OpStream stream = smoke_stream(bench_key());
  double seed_ms = 0.0;
  double pipeline_ms = 0.0;
  for (auto _ : state) {
    const RunResult seed = run_seed(stream);
    const RunResult pipeline = run_pipeline(stream);
    check_single_thread_identity(seed, pipeline);  // exits on divergence
    seed_ms += seed.ms;
    pipeline_ms += pipeline.ms;
    benchmark::DoNotOptimize(pipeline.state_checksum);
  }
  // Hard floors: 1.0 means every response/state checksum matched (the
  // process died before reporting otherwise); the speedup is single-thread,
  // so it exists on any machine.
  state.counters["cnc_response_match"] = 1.0;
  if (pipeline_ms > 0.0) {
    state.counters["cnc_seed_speedup"] = seed_ms / pipeline_ms;
  }
}
BENCHMARK(BM_CncSpeedup)->Unit(benchmark::kMillisecond);

void BM_CncShardedStorm(benchmark::State& state) {
  const auto streams = make_storm_streams(/*shards=*/4,
                                          /*clients_per_shard=*/120,
                                          /*waves=*/120, /*wave_size=*/25,
                                          bench_key());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double single_ms = 0.0;
  double sharded_ms = 0.0;
  for (auto _ : state) {
    const StormResult single = run_storm_pipeline(
        streams, sim::ShardedScheduler::Mode::kSingleQueue, 1);
    const StormResult sharded =
        run_storm_pipeline(streams, sim::ShardedScheduler::Mode::kSharded, 0);
    check_storm_identity(single, sharded, "sharded vs single-queue");
    single_ms += single.ms;
    sharded_ms += sharded.ms;
    benchmark::DoNotOptimize(sharded.merge.state_checksum);
  }
  // Only meaningful with the cores; a counter the baseline lacks is legal
  // for bench_diff, dropping one it has is not (same convention as
  // sharded_speedup_4core).
  if (hw >= 4 && sharded_ms > 0.0) {
    state.counters["cnc_storm_speedup_4core"] = single_ms / sharded_ms;
  }
}
BENCHMARK(BM_CncShardedStorm)->Unit(benchmark::kMillisecond);

void BM_CncStormPurge(benchmark::State& state) {
  const OpStream stream = smoke_stream(bench_key());
  double p99 = 0.0;
  for (auto _ : state) {
    const LatencyResult lat = run_latency(stream);
    check_purge_cost(lat);  // exits when purge stops being O(pending)
    p99 = std::max(p99, lat.p99_ns);
    benchmark::DoNotOptimize(lat.p99_ns);
  }
  // Hard bench_diff ceiling: an O(history) slip in handle/pickup/purge blows
  // the tail latency by orders of magnitude, far past runner noise.
  state.counters["p99_handle_ns"] = p99;
}
BENCHMARK(BM_CncStormPurge)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header(
      "CNC-THROUGHPUT: sharded C&C request pipeline vs retained seed server",
      "framework performance for the Fig. 5 C&C platform under beacon storms");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_cnc_throughput();
  }
  return benchutil::run_benchmarks(argc, argv);
}
