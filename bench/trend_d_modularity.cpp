// TREND-D — §V-D "Modular Malwares".
//
// "This feature allowed Flame to remain undetected for a long period of
// time as the module in charge of escaping security products was
// continuously updated." Three build strategies face the same AV ecosystem
// (hash signatures, daily updates, weekly scans, analysts with a 3-day
// turnaround per captured variant):
//   static     — one build forever,
//   modular    — the C&C pushes a new module build every week (Flame),
//   per-victim — every infection is a unique build (Duqu's extreme).

#include "bench_util.hpp"
#include "analysis/av.hpp"
#include "cnc/attack_center.hpp"
#include "malware/flame/flame.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct DayRow {
  int day = 0;
  std::size_t alive = 0;
  std::size_t sigs = 0;
};

struct Outcome {
  std::size_t still_active = 0;     // artifacts alive at day 90
  std::size_t detections = 0;
  sim::Duration dwell = -1;
  std::vector<DayRow> series;       // 10-day snapshots
};

enum class Strategy { kStatic, kModular, kPerVictim };

Outcome run(Strategy strategy) {
  core::World world(0xd0 + static_cast<std::uint64_t>(strategy));
  world.add_internet_landmarks();

  cnc::AttackCenter center(world.sim(), 0xd1);
  cnc::CncServer server(world.sim(), "cc-0", {"update-zone.net"},
                        center.upload_key());
  server.deploy(world.network());
  center.manage(server);

  malware::flame::FlameConfig config;
  config.default_domains = {"update-zone.net"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  core::FleetSpec spec;
  spec.count = 20;
  auto fleet = core::make_office_fleet(world, spec);

  analysis::SignatureFeed feed;
  analysis::AvOptions av_options;
  av_options.update_interval = sim::kDay;
  av_options.full_scan_interval = 7 * sim::kDay;
  for (auto* host : fleet) {
    auto& av = analysis::AvProduct::install(*host, feed, av_options);
    av.set_on_detect([&world](const analysis::Detection&) {
      world.tracker().record(malware::CampaignEventKind::kDetection, "flame",
                             "av", world.sim().now());
    });
  }

  for (auto* host : fleet) flame.infect(*host, "targeted-drop");
  if (strategy == Strategy::kPerVictim) {
    // Duqu-style: every victim receives a unique build via a targeted ad;
    // applying it rewrites the module files with per-victim bytes.
    int victim_counter = 0;
    for (auto* host : fleet) {
      auto* inf = malware::flame::Flame::find(*host);
      server.push_ad(inf->client_id,
                     {"module:jimmy:" + std::to_string(100 + ++victim_counter),
                      "custom build"});
    }
  }

  // Analyst loop: every 10 days one currently-deployed artifact is captured
  // from some victim and its hash published 3 days later.
  world.sim().every(sim::days(10), [&] {
    winsys::Host* source = fleet[3];
    const auto bytes =
        source->fs().read_file("c:\\windows\\system32\\msglu32.ocx");
    if (bytes) {
      feed.publish_sample("W32.Flamer!msglu32", *bytes,
                          world.sim().now() + sim::days(3));
    }
  });

  // Modular strategy: weekly module updates from the attack center.
  if (strategy == Strategy::kModular) {
    auto version = std::make_shared<int>(1);
    world.sim().every(7 * sim::kDay, [&center, version] {
      center.push_command_all(
          "module:jimmy:" + std::to_string(++*version), "refreshed build");
    });
  }

  Outcome outcome;
  for (int day = 10; day <= 90; day += 10) {
    world.sim().run_for(10 * sim::kDay);
    std::size_t alive = 0;
    for (auto* host : fleet) {
      if (host->fs().is_file("c:\\windows\\system32\\msglu32.ocx")) ++alive;
    }
    outcome.series.push_back(DayRow{day, alive, feed.size()});
  }

  for (auto* host : fleet) {
    if (host->fs().is_file("c:\\windows\\system32\\msglu32.ocx")) {
      ++outcome.still_active;
    }
    if (auto* av = analysis::AvProduct::find(*host)) {
      outcome.detections += av->detections().size();
    }
  }
  outcome.dwell = world.tracker().dwell_time("flame");
  return outcome;
}

void reproduce() {
  const char* labels[] = {"static build", "modular (weekly updates)",
                          "per-victim builds (Duqu-style)"};
  // Three independent 90-day arms races — sweep them across cores.
  const auto outcomes = sim::Sweep::map_items(
      std::vector<Strategy>{Strategy::kStatic, Strategy::kModular,
                            Strategy::kPerVictim},
      run);
  for (int s = 0; s < 3; ++s) {
    benchutil::section(labels[s]);
    std::printf("%-6s %-14s %-12s\n", "day", "alive-files", "sigs");
    for (const auto& row : outcomes[static_cast<std::size_t>(s)].series) {
      std::printf("%-6d %-14zu %-12zu\n", row.day, row.alive, row.sigs);
    }
  }
  benchutil::section("90-day summary");
  std::printf("%-34s %-14s %-12s %-14s\n", "strategy", "alive@day90",
              "detections", "dwell-time");
  for (int s = 0; s < 3; ++s) {
    const std::string dwell = outcomes[s].dwell < 0
                                  ? "undetected"
                                  : sim::format_duration(outcomes[s].dwell);
    std::printf("%-34s %-14zu %-12zu %-14s\n", labels[s],
                outcomes[s].still_active, outcomes[s].detections,
                dwell.c_str());
  }
  std::printf("\nexpected shape: the static build is eradicated once its "
              "hash ships; the self-updating build stays ahead of the feed "
              "(old signatures chase old bytes); per-victim builds make the "
              "captured sample useless beyond its own victim.\n");
}

void BM_NinetyDayArmsRace(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = run(static_cast<Strategy>(state.range(0)));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_NinetyDayArmsRace)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-D: modular, self-updating malware vs AV",
                    "Section V-D");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
