// FIG-2 — "Flame Man-In-The-Middle Attack" (paper Fig. 2).
//
// One infected machine answers WPAD broadcasts (SNACK), becomes the subnet's
// proxy, intercepts Windows Update checks (MUNCH) and substitutes a fake
// update signed with the forged certificate (GADGET). The bench prints the
// infection series across a LAN, and the dependency of the attack on the
// two preconditions the paper identifies: the WPAD fallback on the victim
// and the certificate trick on the wire.

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "pki/forgery.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct MitmOutcome {
  std::size_t infected = 0;
  std::size_t mitm_infections = 0;
  std::size_t signature_rejections = 0;
};

// Runs one LAN configuration; when `report` is non-null the daily infection
// series is rendered into it (only the headline grid cell wants it).
MitmOutcome run_lan(std::size_t lan_size, int wpad_vulnerable_pct,
                    bool forged_cert, bool advisory_applied,
                    benchutil::Report* report) {
  core::World world(0xf16 + static_cast<std::uint64_t>(wpad_vulnerable_pct));
  world.add_internet_landmarks();

  malware::flame::FlameConfig config;
  config.default_domains = {"traffic-spot.biz"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  if (forged_cert) {
    auto activation = world.microsoft().activate_license_server("VictimOrg");
    auto forged =
        pki::forge_code_signing_cert(activation.license_cert, "MS", 0xf2);
    flame.set_forged_signer(forged->certificate, forged->private_key);
  }

  core::FleetSpec spec;
  spec.subnet = "lan";
  spec.count = lan_size;
  spec.vulns = {};  // WPAD susceptibility assigned per quota below
  auto fleet = core::make_office_fleet(world, spec);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (static_cast<int>(i * 100 / lan_size) < wpad_vulnerable_pct) {
      fleet[i]->make_vulnerable(exploits::VulnId::kWpadNetbios);
    }
    if (advisory_applied) {
      world.microsoft().apply_advisory_2718704(fleet[i]->trust_store());
    }
    core::schedule_browsing(world, *fleet[i],
                            sim::hours(4) + sim::minutes(7 * (i % 11)));
    core::schedule_wu_checks(world, *fleet[i],
                             sim::days(1) + sim::minutes(13 * (i % 7)));
  }

  flame.infect(*fleet[0], "targeted-drop");

  MitmOutcome outcome;
  if (report != nullptr) {
    report->printf("%-6s %-10s %-10s\n", "day", "infected", "via-mitm");
  }
  for (int day = 1; day <= 14; ++day) {
    world.sim().run_for(sim::kDay);
    if (report != nullptr && (day <= 5 || day % 2 == 0)) {
      report->printf("%-6d %-10zu %-10zu\n", day,
                     world.tracker().infected_count("flame"),
                     flame.mitm_infections());
    }
  }
  outcome.infected = world.tracker().infected_count("flame");
  outcome.mitm_infections = flame.mitm_infections();
  outcome.signature_rejections =
      world.sim().trace().count_action("wu.signature-rejected");
  return outcome;
}

struct RunSpec {
  const char* label;  // nullptr for the headline daily-series run
  int wpad_pct;
  bool forged;
  bool advisory;
};

struct RunOut {
  MitmOutcome outcome;
  benchutil::Report daily;
};

void reproduce() {
  // The headline run (item 0) and the preconditions matrix share one sweep;
  // results land in item order, so the rendered tables match the old serial
  // loop byte for byte.
  const std::vector<RunSpec> specs = {
      {nullptr, 100, true, false},
      {"WPAD open, forged cert (the attack)", 100, true, false},
      {"WPAD open, NO forged cert", 100, false, false},
      {"WPAD open, forged cert, post-advisory", 100, true, true},
      {"WPAD fixed (DNS-only), forged cert", 0, true, false},
      {"half the LAN WPAD-vulnerable", 50, true, false},
  };
  auto runs = sim::Sweep::map_items(specs, [](const RunSpec& s) {
    RunOut out;
    out.outcome = run_lan(30, s.wpad_pct, s.forged, s.advisory,
                          s.label == nullptr ? &out.daily : nullptr);
    return out;
  });

  benchutil::section("spread on a 30-host LAN (all WPAD-vulnerable, forged cert)");
  runs[0].daily.dump();

  benchutil::section("preconditions matrix (victims infected after 14 days)");
  std::printf("%-44s %-10s %-10s %-8s\n", "configuration", "infected",
              "via-mitm", "wu-rejects");
  for (std::size_t i = 1; i < specs.size(); ++i) {
    const auto& outcome = runs[i].outcome;
    std::printf("%-44s %-10zu %-10zu %-8zu\n", specs[i].label,
                outcome.infected, outcome.mitm_infections,
                outcome.signature_rejections);
  }
}

void BM_Mitm14Days(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = run_lan(static_cast<std::size_t>(state.range(0)), 100,
                           true, false, nullptr);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_Mitm14Days)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-2: Flame WPAD MITM + fake Windows Update",
                    "Figure 2 — SNACK/MUNCH/GADGET proxy hijack");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
