// SIMILARITY-SCALING — the perf story behind the attribution pipeline.
//
// The paper's §I attribution argument ("same factories") runs on pairwise
// feature-set similarity over a specimen pile, which is O(n²) in the pile
// size. The seed kernel held three std::set<std::string> per specimen and
// answered jaccard() with a per-element `b.contains(item)` tree walk —
// every comparison re-hashing and re-comparing the same strings. The
// reworked kernel interns every feature once into a shared FeatureDict and
// scores sorted u64 id vectors with a branch-light linear merge; the
// pairwise stage of similarity_matrix additionally fans out across the
// sweep pool. The seed kernel is kept below verbatim in design — the same
// pattern event_queue_scaling uses for LegacyEventQueue — so the ratio is
// measured against the real baseline rather than remembered.
//
// Two claims:
//  (1) identical results: interning is a bijection, so every intersection/
//      union count — and therefore every double in the matrix — is
//      bit-identical across seed kernel, interned-serial, and the parallel
//      similarity_matrix. Asserted via order-sensitive checksums over the
//      raw double bit patterns, fatal on divergence;
//  (2) >=2x on the pairwise scoring stage (interned-serial vs seed kernel,
//      same thread), before the sweep-pool fan-out multiplies it.
//
// A second section measures the shared Aho–Corasick PatternSet against the
// per-pattern std::string::find loop it replaced in yara/av scanning, with
// the same identity-then-speedup structure.

#include "bench_util.hpp"
#include "analysis/pattern_set.hpp"
#include "analysis/similarity.hpp"
#include "analysis/static_analysis.hpp"
#include "pe/image.hpp"
#include "sim/rng.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <vector>

using namespace cyd;

namespace {

// ---------------------------------------------------------------------------
// The seed kernel, verbatim in design: std::set<std::string> feature sets,
// per-element contains() jaccard, serial upper-triangle matrix.

namespace legacy {

struct SpecimenFeatures {
  std::set<std::string> strings;
  std::set<std::string> imports;
  std::set<std::string> section_names;
};

void collect_features(const pe::Image& image, SpecimenFeatures& out,
                      int max_depth) {
  for (const auto& section : image.sections) {
    out.section_names.insert(section.name);
    for (auto& s : analysis::extract_strings(section.data)) {
      out.strings.insert(std::move(s));
    }
  }
  for (const auto& import : image.imports) {
    for (const auto& fn : import.functions) {
      out.imports.insert(import.dll + "!" + fn);
    }
  }
  for (auto& s : analysis::extract_strings(image.version_info)) {
    out.strings.insert(std::move(s));
  }
  if (max_depth <= 0) return;
  for (const auto& resource : image.resources) {
    common::Bytes payload = resource.data;
    if (auto key = analysis::brute_xor_key(resource.data)) {
      payload = common::xor_cipher(resource.data, *key);
    }
    if (pe::Image::looks_like_pe(payload)) {
      try {
        collect_features(pe::Image::parse(payload), out, max_depth - 1);
        continue;
      } catch (const pe::ParseError&) {
      }
    }
    for (auto& s : analysis::extract_strings(payload)) {
      out.strings.insert(std::move(s));
    }
  }
}

double jaccard(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  for (const auto& item : a) {
    if (b.contains(item)) ++intersection;
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

SpecimenFeatures extract_features(std::string_view bytes, int max_depth = 4) {
  SpecimenFeatures out;
  try {
    collect_features(pe::Image::parse(bytes), out, max_depth);
  } catch (const pe::ParseError&) {
    for (auto& s : analysis::extract_strings(bytes)) {
      out.strings.insert(std::move(s));
    }
  }
  return out;
}

double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b) {
  struct Class {
    double weight;
    const std::set<std::string>& lhs;
    const std::set<std::string>& rhs;
  };
  const Class classes[] = {
      {0.4, a.strings, b.strings},
      {0.35, a.imports, b.imports},
      {0.25, a.section_names, b.section_names},
  };
  double score = 0.0;
  double active_weight = 0.0;
  for (const auto& c : classes) {
    if (c.lhs.empty() && c.rhs.empty()) continue;
    score += c.weight * jaccard(c.lhs, c.rhs);
    active_weight += c.weight;
  }
  if (active_weight == 0.0) return 1.0;
  return score / active_weight;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Synthetic specimen piles. Three "factories" share per-family vocab pools
// (plus a global substrate pool), so the pile has the overlap structure the
// attribution analysis actually exploits — not disjoint feature sets whose
// intersections would all be trivially empty.

std::string random_token(sim::Rng& rng) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
  const auto len = static_cast<std::size_t>(rng.uniform_int(8, 16));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kChars[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(sizeof(kChars)) - 2))]);
  }
  return s;
}

/// Joins `count` picks from `pool` with NUL separators so each pick is one
/// printable run for the extractor.
common::Bytes string_blob(sim::Rng& rng, const std::vector<std::string>& pool,
                          std::size_t count) {
  common::Bytes blob;
  for (std::size_t i = 0; i < count; ++i) {
    blob += rng.pick(pool);
    blob.push_back('\0');
  }
  return blob;
}

std::vector<analysis::LabelledSpecimen> make_pile(std::size_t n,
                                                  std::uint64_t seed) {
  sim::Rng rng(seed);
  constexpr std::size_t kFamilies = 3;

  // Vocab pools: one shared substrate plus one pool per factory.
  std::vector<std::string> substrate;
  for (std::size_t i = 0; i < 160; ++i) substrate.push_back(random_token(rng));
  std::vector<std::vector<std::string>> family_vocab(kFamilies);
  for (auto& vocab : family_vocab) {
    for (std::size_t i = 0; i < 240; ++i) vocab.push_back(random_token(rng));
  }
  std::vector<std::string> dlls;
  for (std::size_t i = 0; i < 14; ++i) {
    dlls.push_back("lib" + std::to_string(i) + ".dll");
  }

  std::vector<analysis::LabelledSpecimen> pile;
  pile.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t family = i % kFamilies;
    pe::Builder builder;
    builder.program("specimen-" + std::to_string(i))
        .filename("spec" + std::to_string(i) + ".exe")
        .section(".text", string_blob(rng, family_vocab[family], 90), true)
        .section(".data", string_blob(rng, substrate, 50), false)
        .section(".f" + std::to_string(family), string_blob(rng, substrate, 8),
                 false);
    for (std::size_t d = 0; d < 5; ++d) {
      const auto& dll = rng.pick(dlls);
      std::vector<std::string> fns;
      for (std::size_t f = 0; f < 6; ++f) {
        fns.push_back("fn" + std::to_string(rng.uniform_int(0, 39)));
      }
      builder.import(dll, std::move(fns));
    }
    // Every fourth specimen carries an encrypted payload so the recursive
    // resource-carving path stays on the measured profile.
    if (i % 4 == 0) {
      builder.encrypted_resource(
          0x10, "payload", string_blob(rng, family_vocab[family], 24), 0xAB);
    }
    pile.push_back({"spec" + std::to_string(i), builder.build().serialize()});
  }
  return pile;
}

// Order-sensitive checksum over the raw double bit patterns: any difference
// in any matrix cell — value or position — changes the result.
std::uint64_t checksum(const std::vector<double>& matrix) {
  std::uint64_t h = 14695981039346656037ull;
  for (const double v : matrix) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The three pipelines under measurement. Each returns the full n x n matrix
// the attribution report consumes.

std::vector<double> legacy_pairwise(
    const std::vector<legacy::SpecimenFeatures>& features) {
  const std::size_t n = features.size();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double score = legacy::similarity(features[i], features[j]);
      matrix[i * n + j] = score;
      matrix[j * n + i] = score;
    }
  }
  return matrix;
}

std::vector<double> interned_pairwise(
    const std::vector<analysis::SpecimenFeatures>& features) {
  const std::size_t n = features.size();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double score = analysis::similarity(features[i], features[j]);
      matrix[i * n + j] = score;
      matrix[j * n + i] = score;
    }
  }
  return matrix;
}

void assert_identical(const char* what, std::uint64_t expected,
                      std::uint64_t got) {
  if (expected != got) {
    std::printf("FATAL: %s diverged from the seed kernel "
                "(%016llx vs %016llx)\n",
                what, static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(got));
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// Reproduction pass: identity proof + scaling table.

void reproduce_similarity() {
  benchutil::section(
      "pairwise similarity: interned merge kernel vs seed set kernel");
  std::printf("%-6s %-11s %-11s %-11s %-9s %-11s %s\n", "pile", "seed-pair",
              "merge-pair", "kernel-x", "sweep-ms", "extract-ms",
              "checksums");

  double headline_kernel = 0.0;
  double headline_sweep = 0.0;
  for (const std::size_t n : {16u, 32u, 64u}) {
    const auto pile = make_pile(n, 0xd15c0 + n);

    std::vector<legacy::SpecimenFeatures> seed_features;
    seed_features.reserve(n);
    const double seed_extract_ms = time_ms([&] {
      for (const auto& s : pile) {
        seed_features.push_back(legacy::extract_features(s.bytes));
      }
    });
    std::vector<double> seed_matrix;
    const double seed_pair_ms =
        time_ms([&] { seed_matrix = legacy_pairwise(seed_features); });

    analysis::FeatureDict dict;
    std::vector<analysis::SpecimenFeatures> interned_features;
    interned_features.reserve(n);
    const double interned_extract_ms = time_ms([&] {
      for (const auto& s : pile) {
        interned_features.push_back(analysis::extract_features(s.bytes, dict));
      }
    });
    std::vector<double> interned_matrix;
    const double interned_pair_ms = time_ms(
        [&] { interned_matrix = interned_pairwise(interned_features); });

    std::vector<double> sweep_matrix;
    const double sweep_ms =
        time_ms([&] { sweep_matrix = analysis::similarity_matrix(pile); });

    const auto expected = checksum(seed_matrix);
    assert_identical("interned-serial matrix", expected,
                     checksum(interned_matrix));
    assert_identical("parallel similarity_matrix", expected,
                     checksum(sweep_matrix));

    headline_kernel = seed_pair_ms / interned_pair_ms;
    headline_sweep = (seed_extract_ms + seed_pair_ms) / sweep_ms;
    char kernel_col[16];
    std::snprintf(kernel_col, sizeof kernel_col, "%.1fx", headline_kernel);
    char extract_col[24];
    std::snprintf(extract_col, sizeof extract_col, "%.1f -> %.1f",
                  seed_extract_ms, interned_extract_ms);
    std::printf("%-6zu %-11.2f %-11.2f %-9s %-9.2f %-11s %s\n",
                static_cast<std::size_t>(n), seed_pair_ms, interned_pair_ms,
                kernel_col, sweep_ms, extract_col, "agree");
  }

  std::printf("\npairwise-kernel speedup at n=64: %.1fx (target: >=2x)\n",
              headline_kernel);
  std::printf("end-to-end similarity_matrix vs seed pipeline: %.1fx "
              "(extraction serial, pairwise swept)\n",
              headline_sweep);
  std::printf("checksums agreed on every pile: interning is a bijection, so "
              "the matrix is bit-identical.\n");
}

// ---------------------------------------------------------------------------
// Pattern scanning: shared Aho–Corasick pass vs per-pattern find loop.

std::vector<std::string> make_patterns(std::size_t count) {
  sim::Rng rng(0xac5ca7);
  std::vector<std::string> patterns;
  patterns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    patterns.push_back(random_token(rng));
  }
  return patterns;
}

std::uint64_t naive_scan(const std::vector<analysis::LabelledSpecimen>& pile,
                         const std::vector<std::string>& patterns) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& specimen : pile) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const bool hit =
          specimen.bytes.find(patterns[p]) != std::string::npos;
      h = (h ^ (p * 2 + static_cast<std::uint64_t>(hit))) *
          1099511628211ull;
    }
  }
  return h;
}

std::uint64_t automaton_scan(
    const std::vector<analysis::LabelledSpecimen>& pile,
    const analysis::PatternSet& set) {
  std::uint64_t h = 14695981039346656037ull;
  std::vector<std::uint8_t> hits;
  for (const auto& specimen : pile) {
    set.match_presence(specimen.bytes, hits);
    for (std::size_t p = 0; p < hits.size(); ++p) {
      h = (h ^ (p * 2 + static_cast<std::uint64_t>(hits[p] != 0))) *
          1099511628211ull;
    }
  }
  return h;
}

void reproduce_patterns() {
  benchutil::section(
      "multi-pattern scanning: shared automaton vs per-pattern find");
  const auto pile = make_pile(48, 0x5ca9);
  // Mix tokens that genuinely occur in the pile (drawn from the same
  // substrate the specimens embed) with fresh ones that never hit.
  auto patterns = make_patterns(48);
  {
    sim::Rng rng(0x5ca9);  // same seed as the pile: replays its vocab stream
    for (std::size_t i = 0; i < 24; ++i) {
      patterns[i] = random_token(rng);
    }
  }
  analysis::PatternSet set;
  for (const auto& p : patterns) set.add(p);
  set.compile();

  std::uint64_t naive_sum = 0;
  std::uint64_t ac_sum = 0;
  const double naive_ms = time_ms([&] { naive_sum = naive_scan(pile, patterns); });
  const double ac_ms = time_ms([&] { ac_sum = automaton_scan(pile, set); });
  assert_identical("automaton hit mask", naive_sum, ac_sum);

  std::printf("48 patterns x 48 specimens: find-loop %.2f ms, automaton "
              "%.2f ms (%.1fx), hit masks identical\n",
              naive_ms, ac_ms, naive_ms / ac_ms);
  std::printf("the same one-pass automaton now backs RuleSet::scan and the "
              "AV products' pattern signatures.\n");
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines)

constexpr std::size_t kBenchPile = 32;

const std::vector<analysis::LabelledSpecimen>& bench_pile() {
  static const auto pile = make_pile(kBenchPile, 0xd15c0 + kBenchPile);
  return pile;
}

void BM_PairwiseSeedKernel(benchmark::State& state) {
  std::vector<legacy::SpecimenFeatures> features;
  for (const auto& s : bench_pile()) {
    features.push_back(legacy::extract_features(s.bytes));
  }
  for (auto _ : state) {
    auto matrix = legacy_pairwise(features);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_PairwiseSeedKernel)->Unit(benchmark::kMillisecond);

void BM_PairwiseInterned(benchmark::State& state) {
  analysis::FeatureDict dict;
  std::vector<analysis::SpecimenFeatures> features;
  for (const auto& s : bench_pile()) {
    features.push_back(analysis::extract_features(s.bytes, dict));
  }
  for (auto _ : state) {
    auto matrix = interned_pairwise(features);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_PairwiseInterned)->Unit(benchmark::kMillisecond);

void BM_SimilarityMatrixSwept(benchmark::State& state) {
  for (auto _ : state) {
    auto matrix = analysis::similarity_matrix(bench_pile());
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_SimilarityMatrixSwept)->Unit(benchmark::kMillisecond);

void BM_ExtractInterned(benchmark::State& state) {
  for (auto _ : state) {
    analysis::FeatureDict dict;
    std::vector<analysis::SpecimenFeatures> features;
    for (const auto& s : bench_pile()) {
      features.push_back(analysis::extract_features(s.bytes, dict));
    }
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_ExtractInterned)->Unit(benchmark::kMillisecond);

void BM_PatternScanFindLoop(benchmark::State& state) {
  const auto patterns = make_patterns(48);
  for (auto _ : state) {
    auto h = naive_scan(bench_pile(), patterns);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_PatternScanFindLoop)->Unit(benchmark::kMillisecond);

void BM_PatternScanAutomaton(benchmark::State& state) {
  const auto patterns = make_patterns(48);
  analysis::PatternSet set;
  for (const auto& p : patterns) set.add(p);
  set.compile();
  for (auto _ : state) {
    auto h = automaton_scan(bench_pile(), set);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_PatternScanAutomaton)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("SIMILARITY-SCALING: attribution kernel throughput",
                    "framework performance, not a paper figure");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_similarity();
    reproduce_patterns();
  }
  return benchutil::run_benchmarks(argc, argv);
}
