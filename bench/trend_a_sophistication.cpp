// TREND-A — §V-A "Sophisticated Malwares".
//
// The paper's point: these weapons burned *multiple* zero-days at once
// (Stuxnet alone used four), and each exploit buys another propagation or
// escalation path. The experiment arms a Stuxnet-like worm with 0..4 of the
// real exploits and measures 30-day reach across a realistically patched
// enterprise — including whether the prize, the air-gapped laptop, is ever
// reached. Carrying an exploit is modelled as (exploit enabled in the
// config) x (vulnerability open on the host); lateral movement via plain
// open shares is disabled so the curve isolates the zero-days themselves.
//
//   0-day #1  MS10-046  LNK rendering        -> execution off a stick
//   0-day #2  MS10-073  win32k EoP           -> install without admin user
//   0-day #3  MS10-061  print spooler        -> remote SYSTEM on the subnet
//   0-day #4  MS10-092  task-scheduler EoP   -> covers 073-patched hosts

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct Outcome {
  std::size_t infected = 0;
  bool reached_airgap = false;
  std::size_t lateral = 0;
};

Outcome run(int zero_days) {
  malware::stuxnet::StuxnetConfig config;
  config.use_lnk = zero_days >= 1;
  config.use_eop = zero_days >= 2;
  config.use_spooler = zero_days >= 3;
  config.use_shares = false;  // not a 0-day; excluded from this experiment
  config.spread_period = sim::hours(6);

  core::World world(0x0a);
  world.add_internet_landmarks();

  core::FleetSpec spec;
  spec.count = 30;
  spec.vulns = {exploits::VulnId::kMs10_046_Lnk};
  auto fleet = core::make_office_fleet(world, spec);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i]->set_user_is_admin(i % 3 == 0);    // 1/3 run as admin
    if (i % 2 == 0) {
      fleet[i]->make_vulnerable(exploits::VulnId::kMs10_073_Eop);
    } else if (zero_days >= 4) {
      // The second EoP covers the half that patched win32k.
      fleet[i]->make_vulnerable(exploits::VulnId::kMs10_092_TaskSched);
    }
    if (i % 3 == 1) {
      fleet[i]->make_vulnerable(exploits::VulnId::kMs10_061_Spooler);
    }
  }
  auto& laptop = world.add_host("airgap-laptop", winsys::OsVersion::kWinXp,
                                "cell");
  laptop.make_vulnerable(exploits::VulnId::kMs10_046_Lnk);
  laptop.make_vulnerable(exploits::VulnId::kMs10_073_Eop);

  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);
  auto& stick = world.add_usb("seed-stick");
  stuxnet.arm_usb(stick);
  core::schedule_usb_courier(world, stick, {fleet[0], fleet[5], &laptop},
                             sim::hours(6));

  world.sim().run_for(sim::days(30));

  Outcome outcome;
  outcome.infected = world.tracker().infected_count("stuxnet");
  outcome.reached_airgap =
      malware::stuxnet::Stuxnet::find(laptop) != nullptr;
  for (auto* host : world.hosts()) {
    if (auto* inf = malware::stuxnet::Stuxnet::find(*host)) {
      outcome.lateral += static_cast<std::size_t>(inf->spread_successes);
    }
  }
  return outcome;
}

void reproduce() {
  benchutil::section(
      "reach after 30 days vs zero-days carried (31 hosts, 1 air-gapped)");
  std::printf("%-8s %-40s %-10s %-9s %-8s\n", "0-days", "arsenal", "infected",
              "lateral", "air-gap");
  const char* arsenal[] = {
      "none (inert stick: nothing executes)",
      "MS10-046 LNK",
      "+ MS10-073 win32k EoP",
      "+ MS10-061 print spooler",
      "+ MS10-092 task-scheduler EoP",
  };
  // The five arsenals are independent 30-day campaigns: fan them out across
  // cores and print in arsenal order once all land.
  const auto outcomes =
      sim::Sweep::map_items(std::vector<int>{0, 1, 2, 3, 4}, run);
  for (int n = 0; n <= 4; ++n) {
    const auto& outcome = outcomes[static_cast<std::size_t>(n)];
    std::printf("%-8d %-40s %-10zu %-9zu %-8s\n", n, arsenal[n],
                outcome.infected, outcome.lateral,
                outcome.reached_airgap ? "REACHED" : "safe");
  }
  const auto& stats = sim::Sweep::last_stats();
  std::printf("\n[sweep: %zu runs, %u workers, %.1f ms wall, %.1f ms cpu]\n",
              stats.runs.size(), stats.workers, stats.wall_ms,
              stats.total_run_ms());
  std::printf("\nexpected shape: monotone reach; the LNK 0-day creates the "
              "beachhead, the first EoP crosses the air gap (non-admin "
              "engineer), the spooler 0-day owns the subnet.\n");
}

void BM_ThirtyDayCampaign(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = run(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ThirtyDayCampaign)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("TREND-A: sophistication — zero-days buy reach",
                    "Section V-A");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
