// ATTRIBUTION-SCALING — pile-scale attribution: MinHash + LSH banding in
// front of the exact kernel.
//
// The interned merge kernel (similarity_scaling) made one pairwise score
// cheap, but the attribution workflow is O(n²) in the pile size: a
// 10⁵-specimen pile is 5·10⁹ pairs and a 10⁶ pile is 5·10¹¹ — no constant
// factor reaches that. This bench drives the two-stage pipeline in
// analysis/minhash.hpp (per-specimen MinHash sketches → LSH band buckets →
// exact merge-scoring of bucket-colliding candidates only → confirmed
// edges streamed into the smallest-root union-find) on synthetic piles
// with ground-truth lineage: a Citadel-style builder kit per family, each
// specimen a customized variant (features dropped/added per victim), which
// is exactly the family-tree structure the paper's §I "same factories"
// argument and the Citadel reverse-engineering workflow (PAPERS.md) rest
// on.
//
// Two claims:
//  (1) fidelity: on piles where the exact O(n²) path still fits, the
//      candidate stage recovers >= 0.98 of all exact above-threshold
//      edges, and the resulting clustering is *identical* to the exact
//      clustering (both paths emit canonical index groups). Fatal on
//      violation. The candidate stage is recall-bounded, not
//      bit-identical — DESIGN.md §7 records why that is the right
//      contract for a prefilter;
//  (2) scale: a 10⁵-specimen pile clusters in seconds, with the
//      candidate-pair reduction factor (exact-kernel invocations saved)
//      reported and gated >= 10x. Pass --mega to also run the 10⁶ pile.
//
// The BM_* cases export `recall` and `candidate_reduction` as benchmark
// counters; tools/bench_diff treats recall as a hard floor (--floor
// recall=0.98 in CI), not a tolerance band — a recall regression is a
// correctness bug, however fast it runs.

#include "bench_util.hpp"
#include "analysis/minhash.hpp"
#include "analysis/similarity.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

using namespace cyd;

namespace {

// ---------------------------------------------------------------------------
// Synthetic kit->variant piles with ground-truth lineage, generated at the
// interned-feature level (FeatureIds are opaque u64 to both kernels, so a
// synthetic id pile exercises exactly the scored representation without
// paying PE serialization + string extraction for 10⁵⁻⁶ specimens).

constexpr std::size_t kVariantsPerKit = 64;
constexpr double kThreshold = 0.5;

constexpr std::size_t kKitStrings = 60;
constexpr std::size_t kKitImports = 24;
constexpr std::size_t kKitSections = 6;
constexpr std::size_t kSubstratePicks = 12;   // shared-vocab strings per kit
constexpr std::size_t kSubstratePool = 512;
constexpr double kKeepProbability = 0.9;      // variant keeps a kit feature
constexpr std::size_t kUniqueStrings = 8;     // per-victim customization
constexpr std::size_t kUniqueImports = 2;

struct KitPile {
  std::vector<analysis::SpecimenFeatures> features;
  std::vector<std::uint32_t> kit_of;  // ground truth: specimen -> kit
  std::size_t kits = 0;
};

void sort_ids(std::vector<analysis::FeatureId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// Disjoint id subspaces: kit-owned ids carry the kit index in the high
/// bits, the cross-kit substrate and the per-victim unique ids live in
/// their own planes. Intra-kit similarity is then governed purely by the
/// keep/add mutation; cross-kit overlap only through the substrate.
KitPile make_kit_pile(std::size_t n, std::uint64_t seed) {
  KitPile pile;
  pile.kits = (n + kVariantsPerKit - 1) / kVariantsPerKit;
  pile.features.reserve(n);
  pile.kit_of.reserve(n);

  struct KitBase {
    std::vector<analysis::FeatureId> strings, imports, sections;
  };
  std::vector<KitBase> bases(pile.kits);
  sim::Rng kit_rng(seed);
  for (std::size_t kit = 0; kit < pile.kits; ++kit) {
    auto& base = bases[kit];
    const std::uint64_t plane = static_cast<std::uint64_t>(kit) << 20;
    for (std::size_t i = 0; i < kKitStrings; ++i) {
      base.strings.push_back(plane | i);
    }
    for (std::size_t i = 0; i < kSubstratePicks; ++i) {
      base.strings.push_back(
          (std::uint64_t{1} << 40) |
          static_cast<std::uint64_t>(kit_rng.uniform_int(
              0, static_cast<std::int64_t>(kSubstratePool) - 1)));
    }
    for (std::size_t i = 0; i < kKitImports; ++i) {
      base.imports.push_back(plane | (0x10000 + i));
    }
    for (std::size_t i = 0; i < kKitSections; ++i) {
      base.sections.push_back(plane | (0x20000 + i));
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t kit = s / kVariantsPerKit;
    sim::Rng rng(sim::derive_seed(seed, s));
    const auto& base = bases[kit];
    analysis::SpecimenFeatures f;
    for (const auto id : base.strings) {
      if (rng.bernoulli(kKeepProbability)) f.strings.push_back(id);
    }
    for (const auto id : base.imports) {
      if (rng.bernoulli(kKeepProbability)) f.imports.push_back(id);
    }
    f.section_names = base.sections;  // section layout is the kit's skeleton
    const std::uint64_t victim_plane =
        (std::uint64_t{1} << 41) | (static_cast<std::uint64_t>(s) << 5);
    for (std::size_t t = 0; t < kUniqueStrings; ++t) {
      f.strings.push_back(victim_plane | t);
    }
    for (std::size_t t = 0; t < kUniqueImports; ++t) {
      f.imports.push_back(victim_plane | (16 + t));
    }
    sort_ids(f.strings);
    sort_ids(f.imports);
    sort_ids(f.section_names);
    pile.features.push_back(std::move(f));
    pile.kit_of.push_back(static_cast<std::uint32_t>(kit));
  }
  return pile;
}

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

[[noreturn]] void fatal(const char* fmt, double a, double b) {
  std::printf("FATAL: ");
  std::printf(fmt, a, b);
  std::printf("\n");
  std::exit(1);
}

/// Recall of the candidate stage against the exact edge set: the fraction
/// of exact above-threshold pairs that banding surfaced. Both lists are
/// lexicographically sorted, so one merge walk counts the hits.
struct RecallResult {
  std::uint64_t exact_edges = 0;
  std::uint64_t surfaced = 0;
  double recall() const {
    return exact_edges == 0 ? 1.0
                            : static_cast<double>(surfaced) /
                                  static_cast<double>(exact_edges);
  }
};

RecallResult candidate_recall(const KitPile& pile,
                              const std::vector<analysis::CandidatePair>& candidates,
                              const std::vector<double>& triangle) {
  const std::size_t n = pile.features.size();
  RecallResult result;
  std::size_t c = 0;
  std::uint64_t k = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++k) {
      if (triangle[k] < kThreshold) continue;
      ++result.exact_edges;
      while (c < candidates.size() &&
             (candidates[c].i < i ||
              (candidates[c].i == i && candidates[c].j < j))) {
        ++c;
      }
      if (c < candidates.size() && candidates[c].i == i &&
          candidates[c].j == j) {
        ++result.surfaced;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fidelity pass: recall + clustering equality against the exact path, on
// piles the O(n²) kernel can still score.

void reproduce_fidelity() {
  benchutil::section(
      "candidate fidelity vs exact path (kit piles, threshold 0.5)");
  std::printf("%-7s %-5s %-11s %-11s %-9s %-10s %-9s %s\n", "pile", "kits",
              "exact-ms", "lsh-ms", "recall", "reduction", "clusters",
              "verdict");
  for (const std::size_t n : {1024u, 2048u}) {
    const auto pile = make_kit_pile(n, 0xc17ade1 + n);

    std::vector<double> triangle;
    std::vector<std::vector<std::size_t>> exact_clusters;
    const double exact_ms = time_ms([&] {
      triangle = analysis::similarity_triangle(pile.features);
      exact_clusters =
          analysis::cluster_feature_indices(pile.features, kThreshold);
    });

    analysis::LshStats stats;
    std::vector<std::vector<std::size_t>> lsh_clusters;
    const double lsh_ms = time_ms([&] {
      lsh_clusters = analysis::cluster_features_lsh(pile.features, kThreshold,
                                                    {}, &stats);
    });

    const auto sketches = sim::Sweep::map_items(
        pile.features, [](const analysis::SpecimenFeatures& f) {
          return analysis::minhash_sketch(f);
        });
    const auto candidates = analysis::lsh_candidate_pairs(sketches);
    const auto recall = candidate_recall(pile, candidates, triangle);

    if (recall.recall() < 0.98) {
      fatal("LSH recall %.4f below the 0.98 floor (%.0f exact edges)",
            recall.recall(), static_cast<double>(recall.exact_edges));
    }
    if (lsh_clusters != exact_clusters) {
      fatal("LSH clustering diverged from exact (%.0f vs %.0f clusters)",
            static_cast<double>(lsh_clusters.size()),
            static_cast<double>(exact_clusters.size()));
    }
    std::printf("%-7zu %-5zu %-11.1f %-11.1f %-9.4f %-10.1f %-9zu %s\n",
                static_cast<std::size_t>(n), pile.kits, exact_ms, lsh_ms,
                recall.recall(), stats.reduction(), lsh_clusters.size(),
                "identical clusters");
  }
  std::printf("\nrecall floor 0.98 held and both paths emitted identical "
              "canonical clusterings;\nonly candidate *selection* is "
              "probabilistic — every confirmed edge is an exact-kernel "
              "score.\n");
}

// ---------------------------------------------------------------------------
// Scale pass: pile sizes the exact path cannot touch.

void reproduce_scale(bool mega) {
  benchutil::section("pile scale (exact path would score n(n-1)/2 pairs)");
  std::printf("%-9s %-6s %-12s %-14s %-12s %-10s %s\n", "pile", "kits",
              "cluster-ms", "exact-pairs", "candidates", "reduction",
              "lineage");
  std::vector<std::size_t> sizes = {10'000, 100'000};
  if (mega) sizes.push_back(1'000'000);
  for (const std::size_t n : sizes) {
    const auto pile = make_kit_pile(n, 0x5ca1e + n);
    analysis::LshStats stats;
    std::vector<std::vector<std::size_t>> clusters;
    const double ms = time_ms([&] {
      clusters = analysis::cluster_features_lsh(pile.features, kThreshold,
                                                {}, &stats);
    });
    // Ground-truth lineage check: every cluster must be kit-pure, and the
    // clustering must recover every kit exactly (no kit split in two).
    bool pure = clusters.size() == pile.kits;
    for (const auto& cluster : clusters) {
      for (const std::size_t member : cluster) {
        if (pile.kit_of[member] != pile.kit_of[cluster.front()]) pure = false;
      }
    }
    if (!pure) {
      fatal("lineage check failed: %.0f clusters for %.0f kits",
            static_cast<double>(clusters.size()),
            static_cast<double>(pile.kits));
    }
    if (stats.reduction() < 10.0) {
      fatal("candidate reduction %.1fx below the 10x floor (%.0f candidates)",
            stats.reduction(), static_cast<double>(stats.candidate_pairs));
    }
    std::printf("%-9zu %-6zu %-12.0f %-14.3e %-12.3e %-10.0f %s\n", n,
                pile.kits, ms, static_cast<double>(stats.total_pairs),
                static_cast<double>(stats.candidate_pairs), stats.reduction(),
                "kit-pure, all kits recovered");
  }
  if (!mega) {
    std::printf("\n(pass --mega for the 10⁶-specimen pile)\n");
  }
  std::printf("\nclustering never materializes the n x n matrix: confirmed "
              "edges stream into the\nsmallest-root union-find as candidate "
              "blocks finish scoring.\n");
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines).
// recall / candidate_reduction ride along as counters; bench_diff gates
// recall as a hard floor.

const KitPile& bench_pile_1k() {
  static const KitPile pile = make_kit_pile(1024, 0xc17ade1 + 1024);
  return pile;
}

const KitPile& bench_pile_2k() {
  static const KitPile pile = make_kit_pile(2048, 0xc17ade1 + 2048);
  return pile;
}

/// Recall of the default-params candidate stage on the 2k pile vs the
/// exact edge set, computed once (the exact triangle is the slow part).
double bench_recall_2k() {
  static const double recall = [] {
    const auto& pile = bench_pile_2k();
    const auto triangle = analysis::similarity_triangle(pile.features);
    const auto sketches = sim::Sweep::map_items(
        pile.features, [](const analysis::SpecimenFeatures& f) {
          return analysis::minhash_sketch(f);
        });
    return candidate_recall(pile, analysis::lsh_candidate_pairs(sketches),
                            triangle)
        .recall();
  }();
  return recall;
}

void BM_MinHashSketchPile(benchmark::State& state) {
  const auto& pile = bench_pile_1k();
  for (auto _ : state) {
    for (const auto& f : pile.features) {
      auto sketch = analysis::minhash_sketch(f);
      benchmark::DoNotOptimize(sketch);
    }
  }
}
BENCHMARK(BM_MinHashSketchPile)->Unit(benchmark::kMillisecond);

void BM_LshCandidatePairs(benchmark::State& state) {
  const auto& pile = bench_pile_2k();
  const auto sketches = sim::Sweep::map_items(
      pile.features, [](const analysis::SpecimenFeatures& f) {
        return analysis::minhash_sketch(f);
      });
  for (auto _ : state) {
    auto pairs = analysis::lsh_candidate_pairs(sketches);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_LshCandidatePairs)->Unit(benchmark::kMillisecond);

void BM_LshClusterPile(benchmark::State& state) {
  const auto& pile = bench_pile_2k();
  analysis::LshStats stats;
  for (auto _ : state) {
    auto clusters =
        analysis::cluster_features_lsh(pile.features, kThreshold, {}, &stats);
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["recall"] = bench_recall_2k();
  state.counters["candidate_reduction"] = stats.reduction();
}
BENCHMARK(BM_LshClusterPile)->Unit(benchmark::kMillisecond);

void BM_ExactClusterStream(benchmark::State& state) {
  const auto& pile = bench_pile_1k();
  for (auto _ : state) {
    auto clusters =
        analysis::cluster_feature_indices(pile.features, kThreshold);
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_ExactClusterStream)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header(
      "ATTRIBUTION-SCALING: MinHash/LSH candidate stage at pile scale",
      "framework performance behind the Section I attribution workflow");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_fidelity();
    reproduce_scale(benchutil::has_flag(argc, argv, "--mega"));
  }
  return benchutil::run_benchmarks(argc, argv);
}
