// ABLATION — design knobs behind the Stuxnet reproduction.
//
// DESIGN.md calls out three modelling choices worth stress-testing:
//  (1) the observe/cover cadence of the attack state machine — the paper
//      says attacks were rare and patient; how does destruction-vs-stealth
//      trade as the cadence compresses?
//  (2) the deception itself — replaying recorded values to the safety
//      system is the load-bearing trick; remove it and the trip should fire
//      almost immediately (validating that our safety model has teeth);
//  (3) the PLC scan period — physics must be discretization-robust, or the
//      centrifuge results would be numerics, not modelling.

#include "bench_util.hpp"
#include "malware/stuxnet/plc_payload.hpp"
#include "scada/safety.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct AblationResult {
  std::size_t destroyed = 0;
  int attacks = 0;
  bool safety_tripped = false;
};

AblationResult run_cascade(malware::stuxnet::AttackTiming timing,
                           bool spoof_reports, sim::Duration scan_period,
                           sim::Duration horizon) {
  sim::Simulation simulation;
  scada::Plc plc(simulation, "cascade");
  auto& drive = plc.bus().add_drive("vfd", scada::DriveVendor::kVacon);
  for (int i = 0; i < 32; ++i) drive.add_centrifuge(std::to_string(i));
  plc.set_operator_setpoint(1064.0);
  scada::DigitalSafetySystem safety(800.0, 1250.0);
  safety.attach(plc);

  // A variant of the attack logic with the deception optionally removed.
  class HonestVariant : public malware::stuxnet::StuxnetPlcLogic {
   public:
    explicit HonestVariant(malware::stuxnet::AttackTiming timing)
        : StuxnetPlcLogic(timing) {}
    void scan(scada::Plc& plc, sim::Duration dt) override {
      StuxnetPlcLogic::scan(plc, dt);
      plc.report_frequency(plc.actual_frequency());  // tell the truth
    }
  };
  auto logic =
      spoof_reports
          ? std::make_unique<malware::stuxnet::StuxnetPlcLogic>(timing)
          : std::make_unique<HonestVariant>(timing);
  auto* logic_raw = logic.get();
  plc.set_logic(std::move(logic));
  plc.start(scan_period);
  simulation.run_for(horizon);

  AblationResult result;
  result.destroyed = plc.bus().destroyed_centrifuges();
  result.attacks = logic_raw->attacks_launched();
  result.safety_tripped = safety.tripped();
  return result;
}

void reproduce() {
  benchutil::section("(1) attack cadence: cover duration sweep (60 days)");
  std::printf("%-18s %-9s %-11s %-8s\n", "cover period", "attacks",
              "destroyed", "safety");
  const std::vector<sim::Duration> covers{sim::days(3), sim::days(9),
                                          sim::days(27), sim::days(81)};
  const auto cadence_results =
      sim::Sweep::map_items(covers, [](sim::Duration cover) {
        malware::stuxnet::AttackTiming timing;
        timing.observe_window = sim::days(13);
        timing.cover_duration = cover;
        return run_cascade(timing, true, sim::minutes(5), sim::days(60));
      });
  for (std::size_t i = 0; i < covers.size(); ++i) {
    const auto& result = cadence_results[i];
    std::printf("%-18s %-9d %2zu/32      %-8s\n",
                sim::format_duration(covers[i]).c_str(), result.attacks,
                result.destroyed, result.safety_tripped ? "TRIPPED" : "quiet");
  }

  benchutil::section("(2) the deception ablated: honest telemetry");
  std::printf("%-26s %-9s %-11s %-8s\n", "variant", "attacks", "destroyed",
              "safety");
  malware::stuxnet::AttackTiming timing;
  timing.observe_window = sim::days(13);
  timing.cover_duration = sim::days(27);
  const std::vector<bool> spoofs{true, false};
  const auto spoof_results =
      sim::Sweep::map_items(spoofs, [&timing](bool spoof) {
        return run_cascade(timing, spoof, sim::minutes(5), sim::days(180));
      });
  for (std::size_t i = 0; i < spoofs.size(); ++i) {
    const auto& result = spoof_results[i];
    std::printf("%-26s %-9d %2zu/32      %-8s\n",
                spoofs[i] ? "replayed-normal (Stuxnet)" : "honest reports",
                result.attacks, result.destroyed,
                result.safety_tripped ? "TRIPPED" : "quiet");
  }

  benchutil::section("(3) scan-period discretization (same physics?)");
  std::printf("%-14s %-11s %-9s\n", "scan period", "destroyed", "attacks");
  const std::vector<sim::Duration> periods{sim::minutes(1), sim::minutes(5),
                                           sim::minutes(15), sim::minutes(60)};
  const auto period_results =
      sim::Sweep::map_items(periods, [&timing](sim::Duration period) {
        return run_cascade(timing, true, period, sim::days(180));
      });
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& result = period_results[i];
    std::printf("%-14s %2zu/32      %-9d\n",
                sim::format_duration(periods[i]).c_str(), result.destroyed,
                result.attacks);
  }
  std::printf("\nexpected: destruction scales with cadence while stealth "
              "holds; removing the replay flips the safety verdict without "
              "changing the command sequence; destroyed counts are stable "
              "across scan periods (discretization-robust physics).\n");
}

void BM_CascadeHalfYear(benchmark::State& state) {
  malware::stuxnet::AttackTiming timing;
  for (auto _ : state) {
    auto result = run_cascade(timing, true, sim::minutes(state.range(0)),
                              sim::days(180));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CascadeHalfYear)->Arg(1)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("ABLATION: Stuxnet-model design knobs",
                    "DESIGN.md §5 modelling choices");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
