// EVENT-QUEUE-SCALING — the perf story behind the discrete-event core.
//
// Every scenario in the reproduction runs through sim::EventQueue, so its
// per-event cost multiplies across the millions of Monte-Carlo events the
// sweeps execute. The seed implementation paid one shared_ptr<bool> control
// block per schedule_at (the cancellation handle) plus a std::function heap
// closure for any capture past two words, and sifted 64+-byte entries
// through a binary std::priority_queue. The reworked core (slab slots +
// SBO callables + compact 4-ary heap + native periodic scheduling) is
// measured here against that seed design, kept below verbatim as
// LegacyEventQueue — the same pattern sweep_scaling uses for LegacyTraceLog,
// so the ratio is measured against the real baseline rather than remembered.
//
// Three claims:
//  (1) identical semantics: both implementations fire the same events in the
//      same (time, insertion) order on every workload — asserted via
//      order-sensitive checksums, fatal on divergence;
//  (2) >=2x schedule+drain throughput on the mixed periodic workload
//      (C&C-beacon-style series + one-shot churn), the shape the campaign
//      scenarios actually generate;
//  (3) >=2x on the *dense* periodic regime (10⁴ concurrent minute-scale
//      beacon series) for the calendar-wheel backend over the 4-ary heap,
//      with the same bit-identical firing order — the heap's O(log n) sift
//      is pure overhead there, the wheel inserts in O(1). Exported as the
//      `calendar_speedup` floor and `calendar_event_ns` ceiling.

#include "bench_util.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

using namespace cyd;

namespace {

// ---------------------------------------------------------------------------
// The seed implementation, verbatim in design: a copyable handle backed by a
// shared_ptr<bool>, std::function closures, and a std::priority_queue of
// fat entries.

class LegacyEventHandle {
 public:
  LegacyEventHandle() : cancelled_(std::make_shared<bool>(false)) {}
  void cancel() { *cancelled_ = true; }
  bool cancelled() const { return *cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

class LegacyEventQueue {
 public:
  LegacyEventHandle schedule_at(sim::TimePoint t, std::function<void()> fn) {
    LegacyEventHandle handle;
    queue_.push(Entry{std::max(t, now_), next_seq_++, std::move(fn), handle});
    return handle;
  }

  sim::TimePoint now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }

  bool step() {
    while (!queue_.empty()) {
      Entry entry = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (entry.handle.cancelled()) continue;
      now_ = entry.time;
      entry.fn();
      return true;
    }
    return false;
  }

  std::size_t run_until(sim::TimePoint deadline) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().time <= deadline) {
      if (step()) ++executed;
    }
    now_ = std::max(now_, deadline);
    return executed;
  }

  std::size_t run_all() {
    std::size_t executed = 0;
    while (step()) ++executed;
    return executed;
  }

 private:
  struct Entry {
    sim::TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
    LegacyEventHandle handle;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  sim::TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// The seed's Simulation::every, verbatim in design: a recursive
/// heap-allocated closure that re-schedules itself each firing.
LegacyEventHandle legacy_every(LegacyEventQueue& q, sim::Duration period,
                               std::function<void()> fn) {
  LegacyEventHandle series;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [&q, period, fn = std::move(fn), series, weak_tick]() {
    if (series.cancelled()) return;
    fn();
    if (series.cancelled()) return;
    if (auto self = weak_tick.lock()) {
      q.schedule_at(q.now() + period, [self] { (*self)(); });
    }
  };
  q.schedule_at(q.now() + period, [tick] { (*tick)(); });
  return series;
}

// ---------------------------------------------------------------------------
// Thin adapters so one workload definition drives both implementations.

struct SlabApi {
  static constexpr const char* kName = "slab + 4-ary heap";
  sim::EventQueue q;
  using Handle = sim::EventHandle;

  template <class F>
  Handle at(sim::TimePoint t, F&& fn) {
    return q.schedule_at(t, std::forward<F>(fn));
  }
  template <class F>
  Handle every(sim::Duration period, F&& fn) {
    return q.schedule_every(period, std::forward<F>(fn), q.now() + period);
  }
};

struct LegacyApi {
  static constexpr const char* kName = "seed (shared_ptr + std::function)";
  LegacyEventQueue q;
  using Handle = LegacyEventHandle;

  template <class F>
  Handle at(sim::TimePoint t, F&& fn) {
    return q.schedule_at(t, std::forward<F>(fn));
  }
  template <class F>
  Handle every(sim::Duration period, F&& fn) {
    return legacy_every(q, period, std::forward<F>(fn));
  }
};

// Order-sensitive checksum mixer: any divergence in firing order, time, or
// payload identity between the implementations changes the result.
inline void mix(std::uint64_t& h, std::uint64_t v) {
  h = (h ^ v) * 1099511628211ull;
}

/// One-shot churn: `events` events at pseudo-random times over a horizon,
/// scheduled up front, drained in one run_all.
template <class Api>
std::uint64_t schedule_drain(std::size_t events) {
  Api api;
  std::uint64_t h = 14695981039346656037ull;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < events; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const auto t = static_cast<sim::TimePoint>(state % 1'000'000);
    const std::uint64_t salt = i * 0x9e37ull;  // 3-word capture, like a beacon
    api.at(t, [&h, t, salt] { mix(h, static_cast<std::uint64_t>(t) + salt); });
  }
  api.q.run_all();
  return h;
}

/// The acceptance workload: `series` periodic beacons (C&C check-ins, purge
/// tasks, centrifuge ticks) with co-prime-ish periods, each eighth firing
/// spawning a one-shot follow-up — the shape a campaign scenario generates.
template <class Api>
std::uint64_t mixed_periodic(std::size_t series, sim::Duration horizon) {
  Api api;
  auto* q = &api.q;
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < series; ++i) {
    const sim::Duration period = 3 + static_cast<sim::Duration>(i % 17);
    std::uint64_t ticks = 0;
    api.every(period, [q, &h, i, ticks]() mutable {
      mix(h, static_cast<std::uint64_t>(q->now()) * 31 + i);
      if (++ticks % 8 == 0) {
        const auto t = q->now() + 1;
        q->schedule_at(t, [&h, t] { mix(h, static_cast<std::uint64_t>(t)); });
      }
    });
  }
  api.q.run_until(horizon);
  return h;
}

/// Cancellation churn: schedule a batch, cancel every other handle, drain.
template <class Api>
std::uint64_t cancel_drain(std::size_t events) {
  Api api;
  std::uint64_t h = 14695981039346656037ull;
  std::vector<typename Api::Handle> handles;
  handles.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    const auto t = static_cast<sim::TimePoint>((i * 7919) % 100'000);
    handles.push_back(
        api.at(t, [&h, t] { mix(h, static_cast<std::uint64_t>(t)); }));
  }
  for (std::size_t i = 0; i < events; i += 2) handles[i].cancel();
  api.q.run_all();
  return h;
}

/// The dense periodic regime the calendar backend targets: `series`
/// concurrent minute-scale beacons (60–120s periods, phase-staggered), the
/// shape of a fleet-wide C&C check-in schedule. The pending set stays at
/// `series` events for the whole run, so the 4-ary heap pays an
/// O(log series) sift per firing while the wheel inserts in O(1) and pops
/// from its lazily-sorted cursor bucket.
std::uint64_t dense_periodic(sim::EventQueue::Backend backend,
                             std::size_t series, sim::Duration horizon,
                             std::uint64_t* executed = nullptr) {
  // 2^12 32-ms buckets: a 131s window that keeps every re-arm of a <=120s
  // period on the wheel (no overflow traffic), at a few keys per bucket.
  sim::EventQueue q(backend, sim::CalendarConfig{/*bucket_bits=*/12,
                                                 /*width_shift=*/5});
  q.reserve(series);
  std::uint64_t h = 14695981039346656037ull;
  auto* qp = &q;
  for (std::size_t i = 0; i < series; ++i) {
    const auto period =
        static_cast<sim::Duration>(60'000 + (i * 2654435761ull) % 60'000);
    const auto first = static_cast<sim::TimePoint>(
        1 + (i * 40503ull) % static_cast<std::uint64_t>(period));
    q.schedule_every(
        period,
        [qp, &h, i] { mix(h, static_cast<std::uint64_t>(qp->now()) * 31 + i); },
        first);
  }
  q.run_until(horizon);
  if (executed) *executed = q.stats().executed;
  return h;
}

// ---------------------------------------------------------------------------
// Reproduction pass: identity proof + throughput table.

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  double legacy_ms = 0;
  double slab_ms = 0;
};

Measurement measure(const char* workload, std::size_t events,
                    std::uint64_t (*legacy)(), std::uint64_t (*slab)()) {
  std::uint64_t legacy_sum = 0;
  std::uint64_t slab_sum = 0;
  Measurement m;
  m.legacy_ms = time_ms([&] { legacy_sum = legacy(); });
  m.slab_ms = time_ms([&] { slab_sum = slab(); });
  if (legacy_sum != slab_sum) {
    std::printf("FATAL: %s diverged between implementations "
                "(%016llx vs %016llx)\n",
                workload, static_cast<unsigned long long>(legacy_sum),
                static_cast<unsigned long long>(slab_sum));
    std::exit(1);
  }
  const double levents = static_cast<double>(events);
  std::printf("%-18s %-12.1f %-12.1f %-10.2f %.1fM -> %.1fM ev/s\n", workload,
              m.legacy_ms, m.slab_ms, m.legacy_ms / m.slab_ms,
              levents / m.legacy_ms / 1000.0, levents / m.slab_ms / 1000.0);
  return m;
}

constexpr std::size_t kReproEvents = 200'000;
constexpr std::size_t kReproSeries = 64;
// Long horizon on purpose: the acceptance target is *steady-state*
// throughput, so the run has to be dominated by periodic re-arms, not by
// series setup. 240s of simulated time is ~2.1M firings for 64 series.
constexpr sim::Duration kReproHorizon = 240'000;
// ~64 series over periods 3..19ms for the horizon plus 1/8 one-shot
// follow-ups; approximate, used only for the ev/s display column.
constexpr std::size_t kMixedEvents = 2'150'000;
// Dense regime: 10^4 concurrent beacon series — a fleet-sized check-in
// schedule whose working set (slab + heap/wheel) is cache-resident, so the
// measured gap is the queue structures themselves, not shared slab misses —
// over 100 simulated minutes (~693k firings).
constexpr std::size_t kDenseSeries = 10'000;
constexpr sim::Duration kDenseHorizon = 6'000'000;
// Shorter horizon for the regression-tracked benchmark case (it runs both
// backends per iteration; ~231k firings keeps one iteration under 50ms).
constexpr std::size_t kDenseBenchSeries = 10'000;
constexpr sim::Duration kDenseBenchHorizon = 2'000'000;

void reproduce_scaling() {
  benchutil::section(
      "schedule/cancel/drain throughput: slab core vs seed implementation");
  std::printf("%-18s %-12s %-12s %-10s %s\n", "workload", "seed-ms", "slab-ms",
              "speedup", "throughput");

  measure("schedule+drain", kReproEvents,
          [] { return schedule_drain<LegacyApi>(kReproEvents); },
          [] { return schedule_drain<SlabApi>(kReproEvents); });
  const auto mixed = measure(
      "mixed periodic", kMixedEvents,
      [] { return mixed_periodic<LegacyApi>(kReproSeries, kReproHorizon); },
      [] { return mixed_periodic<SlabApi>(kReproSeries, kReproHorizon); });
  measure("cancel half", kReproEvents,
          [] { return cancel_drain<LegacyApi>(kReproEvents); },
          [] { return cancel_drain<SlabApi>(kReproEvents); });

  std::printf("\nmixed-periodic speedup: %.1fx (target: >=2x)\n",
              mixed.legacy_ms / mixed.slab_ms);
  std::printf("every checksum agreed: both cores fire identical (time, seq) "
              "sequences.\n");

  // Scheduler observability: the counters the slab core now exports.
  SlabApi api;
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    api.at(static_cast<sim::TimePoint>(i % 97), [&sink] { ++sink; });
  }
  auto series = api.every(5, [&sink] { ++sink; });
  api.q.run_until(200);
  series.cancel();
  api.q.run_all();
  const auto& stats = api.q.stats();
  std::printf("\nscheduler counters (sample run): scheduled=%llu "
              "executed=%llu cancelled=%llu peak_pending=%zu\n",
              static_cast<unsigned long long>(stats.scheduled),
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.cancelled),
              stats.peak_pending);
}

void reproduce_dense_periodic() {
  benchutil::section("dense periodic regime: calendar wheel vs 4-ary heap");
  std::printf("%zu beacon series, 60-120s periods, %llds simulated horizon\n",
              kDenseSeries,
              static_cast<long long>(kDenseHorizon / 1000));

  std::uint64_t heap_sum = 0;
  std::uint64_t cal_sum = 0;
  std::uint64_t heap_exec = 0;
  std::uint64_t cal_exec = 0;
  const double heap_ms = time_ms([&] {
    heap_sum = dense_periodic(sim::EventQueue::Backend::kHeap, kDenseSeries,
                              kDenseHorizon, &heap_exec);
  });
  const double cal_ms = time_ms([&] {
    cal_sum = dense_periodic(sim::EventQueue::Backend::kCalendar, kDenseSeries,
                             kDenseHorizon, &cal_exec);
  });
  if (heap_sum != cal_sum || heap_exec != cal_exec) {
    std::printf("FATAL: dense periodic diverged between backends "
                "(%016llx/%llu vs %016llx/%llu)\n",
                static_cast<unsigned long long>(heap_sum),
                static_cast<unsigned long long>(heap_exec),
                static_cast<unsigned long long>(cal_sum),
                static_cast<unsigned long long>(cal_exec));
    std::exit(1);
  }

  const auto events = static_cast<double>(cal_exec);
  std::printf("%-18s %-12s %-14s %s\n", "backend", "ms", "ev/s", "ns/event");
  std::printf("%-18s %-12.1f %-14.2fM %.0f\n", "4-ary heap", heap_ms,
              events / heap_ms / 1000.0, heap_ms * 1e6 / events);
  std::printf("%-18s %-12.1f %-14.2fM %.0f\n", "calendar wheel", cal_ms,
              events / cal_ms / 1000.0, cal_ms * 1e6 / events);
  std::printf("\ncalendar speedup: %.1fx over %llu events "
              "(target: >=2x, order bit-identical)\n",
              heap_ms / cal_ms, static_cast<unsigned long long>(cal_exec));
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines)

void BM_ScheduleDrainLegacy(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto h = schedule_drain<LegacyApi>(events);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ScheduleDrainLegacy)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_ScheduleDrainSlab(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto h = schedule_drain<SlabApi>(events);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ScheduleDrainSlab)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_MixedPeriodicLegacy(benchmark::State& state) {
  for (auto _ : state) {
    auto h = mixed_periodic<LegacyApi>(64, 8'000);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_MixedPeriodicLegacy)->Unit(benchmark::kMillisecond);

void BM_MixedPeriodicSlab(benchmark::State& state) {
  for (auto _ : state) {
    auto h = mixed_periodic<SlabApi>(64, 8'000);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_MixedPeriodicSlab)->Unit(benchmark::kMillisecond);

void BM_CancelDrainLegacy(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto h = cancel_drain<LegacyApi>(events);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_CancelDrainLegacy)->Arg(50'000)->Unit(benchmark::kMillisecond);

void BM_CancelDrainSlab(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto h = cancel_drain<SlabApi>(events);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_CancelDrainSlab)->Arg(50'000)->Unit(benchmark::kMillisecond);

/// Runs the dense periodic workload under BOTH backends each iteration:
/// asserts order identity (fatal on divergence, same as the repro pass) and
/// exports the CI-gated counters — `calendar_speedup` (floored) and
/// `calendar_event_ns`, the calendar backend's per-event overhead (ceilinged).
void BM_DensePeriodicCalendar(benchmark::State& state) {
  // Best-of-N per backend: the workload is deterministic, so the minimum
  // observed time is the noise-robust estimator — scheduler preemption on a
  // loaded CI box only ever inflates a run, never deflates it. Three pairs
  // per iteration so even a single-iteration smoke pass gets a stable ratio.
  double heap_best = 1e300;
  double cal_best = 1e300;
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int rep = 0; rep < 3; ++rep) {
      std::uint64_t heap_sum = 0;
      std::uint64_t cal_sum = 0;
      heap_best = std::min(heap_best, time_ms([&] {
        heap_sum = dense_periodic(sim::EventQueue::Backend::kHeap,
                                  kDenseBenchSeries, kDenseBenchHorizon);
      }));
      cal_best = std::min(cal_best, time_ms([&] {
        cal_sum = dense_periodic(sim::EventQueue::Backend::kCalendar,
                                 kDenseBenchSeries, kDenseBenchHorizon,
                                 &events);
      }));
      if (heap_sum != cal_sum) {
        std::printf("FATAL: dense periodic diverged between backends "
                    "(%016llx vs %016llx)\n",
                    static_cast<unsigned long long>(heap_sum),
                    static_cast<unsigned long long>(cal_sum));
        std::exit(1);
      }
      benchmark::DoNotOptimize(cal_sum);
    }
  }
  state.counters["calendar_speedup"] = heap_best / cal_best;
  state.counters["calendar_event_ns"] =
      cal_best * 1e6 / static_cast<double>(events);
}
BENCHMARK(BM_DensePeriodicCalendar)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("EVENT-QUEUE-SCALING: discrete-event core throughput",
                    "framework performance, not a paper figure");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_scaling();
    reproduce_dense_periodic();
  }
  return benchutil::run_benchmarks(argc, argv);
}
