// ATTRIBUTION — the "same factories" analysis (paper §I).
//
// "Duqu shares a lot of code with Stuxnet and there are several technical
// evidences that they have been designed by the same unknown entity";
// "Flame and Gauss exhibit striking similarities and several technical
// evidences indicate that they come from the same factories". This bench
// runs the analysis-toolkit's similarity pipeline over all five specimens
// and prints the pairwise matrix plus the clusters it induces — expecting
// the Tilded platform (Stuxnet+Duqu), the Flame platform (Flame+Gauss), and
// Shamoon alone (the paper's "work of amateurs").

#include "bench_util.hpp"
#include "analysis/similarity.hpp"
#include "malware/duqu/duqu.hpp"
#include "malware/flame/flame.hpp"
#include "malware/gauss/gauss.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"

using namespace cyd;

namespace {

std::vector<analysis::LabelledSpecimen> mint_specimens() {
  static core::World lab(0xa77b);
  static scada::S7ProxyRegistry proxies;
  static malware::stuxnet::Stuxnet stuxnet(lab.sim(), lab.network(),
                                           lab.programs(), lab.s7_registry(),
                                           lab.tracker());
  static malware::duqu::Duqu duqu(lab.sim(), lab.network(), lab.programs(),
                                  lab.tracker());
  static malware::flame::Flame flame(lab.sim(), lab.network(),
                                     lab.programs(), lab.tracker(),
                                     malware::flame::FlameConfig{});
  static malware::gauss::Gauss gauss(lab.sim(), lab.network(),
                                     lab.programs(), lab.tracker());
  static malware::shamoon::Shamoon shamoon(lab.sim(), lab.network(),
                                           lab.programs(), lab.tracker());
  return {
      {"stuxnet", stuxnet.build_dropper().serialize()},
      {"duqu", duqu.build_installer("victim-q").serialize()},
      {"flame", flame.build_installer().serialize()},
      {"gauss", gauss.build_installer().serialize()},
      {"shamoon", shamoon.build_trksvr().serialize()},
  };
}

void reproduce() {
  // Minting touches the function-local static Worlds, so it stays on this
  // thread. The library's similarity_matrix does the rest — serial
  // extraction into one shared FeatureDict, then the pairwise scores
  // sweeping the upper triangle — so the bench no longer duplicates the
  // triangle/scatter logic it used to carry inline.
  const auto specimens = mint_specimens();
  const std::size_t n = specimens.size();
  const auto matrix = analysis::similarity_matrix(specimens);

  benchutil::section("pairwise similarity (strings + imports + layout)");
  std::printf("%-10s", "");
  for (const auto& s : specimens) std::printf("%-9s", s.label.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-10s", specimens[i].label.c_str());
    for (std::size_t j = 0; j < n; ++j) {
      std::printf("%-9.2f", matrix[i * n + j]);
    }
    std::printf("\n");
  }

  benchutil::section("clusters at threshold 0.18 (single linkage)");
  for (const auto& cluster :
       analysis::cluster_specimens(specimens, 0.18)) {
    std::printf("  {");
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : " ", cluster[i].c_str());
    }
    std::printf(" }\n");
  }
  std::printf("\nexpected shape: Stuxnet-Duqu bind through the Tilded "
              "platform substrate, Flame-Gauss through the Lua-VM platform "
              "runtime, and Shamoon stands alone — the paper's three "
              "distinct origins.\n");

  benchutil::section("what survives per-victim builds");
  std::printf("duqu(victim-a) vs duqu(victim-b) hash-equal: no, "
              "similarity: %.2f\n",
              analysis::specimen_similarity(
                  mint_specimens()[1].bytes,
                  [] {
                    static core::World lab2(0xa77c);
                    static malware::InfectionTracker tr;
                    static malware::duqu::Duqu d(lab2.sim(), lab2.network(),
                                                 lab2.programs(), tr);
                    return d.build_installer("victim-z").serialize();
                  }()));
}

void BM_SimilarityMatrix(benchmark::State& state) {
  const auto specimens = mint_specimens();
  for (auto _ : state) {
    auto matrix = analysis::similarity_matrix(specimens);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_SimilarityMatrix)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("ATTRIBUTION: five specimens, three factories",
                    "Section I code-sharing evidence");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
