// FIG-6 — "Shamoon Malware Components" (paper Fig. 6).
//
// Two halves, matching how the figure was produced: (a) the dissection of
// TrkSvr.exe — dropper, XOR-encrypted wiper/reporter/x64 resources, the
// nested Eldos-signed driver; (b) the detonation at enterprise scale — the
// paper reports ~30,000 bricked workstations at Saudi Aramco; we run 1,000
// hosts (1:30 scale) and print the kill-date timeline.

#include "bench_util.hpp"
#include "analysis/static_analysis.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

void print_tree(const analysis::StaticReport& report, int indent,
                benchutil::Report& out) {
  out.printf("%*s%s\n", indent, "", report.summary().c_str());
  for (const auto& res : report.resources) {
    std::string crypto;
    if (res.xor_encrypted) {
      crypto = " [XOR";
      if (res.recovered_xor_key) {
        char key[16];
        std::snprintf(key, sizeof(key), " key=0x%02X]", *res.recovered_xor_key);
        crypto += key;
      } else {
        crypto += " key=?]";
      }
    }
    out.printf("%*s  resource %3u %-7s %5zu bytes entropy=%.2f%s\n", indent,
               "", res.id, res.name.c_str(), res.size, res.entropy,
               crypto.c_str());
    if (res.embedded) print_tree(*res.embedded, indent + 6, out);
  }
}

void reproduce_dissection(benchutil::Report& out) {
  core::World lab(0x1ab);
  malware::shamoon::Shamoon shamoon(lab.sim(), lab.network(),
                                    lab.programs(), lab.tracker());
  auto eldos = benchutil::SigningIdentity::make("EldoS Corporation", 0xe1d);
  auto driver = pe::Builder{}
                    .program(malware::shamoon::Shamoon::kDriverProgram)
                    .filename("drdisk.sys")
                    .section(".text", "raw disk i/o", true)
                    .build();
  pki::sign_image(driver, eldos.cert, eldos.key);
  shamoon.set_disk_driver(driver);

  pki::CertStore store;
  pki::TrustStore trust;
  store.add(eldos.ca.certificate());
  trust.trust_root(eldos.ca.certificate().serial);

  const auto bytes = shamoon.build_trksvr().serialize();
  const auto report = analysis::dissect(bytes, store, trust,
                                        sim::make_date(2012, 8, 20));
  out.section("component tree carved from TrkSvr.exe");
  print_tree(report, 0, out);
  out.printf("\nembedded executables found : %zu "
             "(reporter, wiper+driver, x64 variant tree)\n",
             report.embedded_pe_count());
  out.printf("burning-flag JPEG fragment : 192 bytes (the truncation bug)\n");
}

// Runs the fleet detonation; with a Report the kill-date timeline is
// rendered into it, without one only the simulation runs (the bench path).
void reproduce_detonation(std::size_t fleet_size, benchutil::Report* out) {
  core::World world(0xa3a);
  world.add_internet_landmarks();

  core::FleetSpec spec;
  spec.count = fleet_size;
  spec.name_prefix = "aramco";
  spec.documents_per_host = 3;
  auto fleet = core::make_office_fleet(world, spec);

  malware::shamoon::ShamoonConfig config;
  config.kill_date = sim::make_date(2012, 8, 15, 8, 8);
  config.spread_period = sim::minutes(20);
  malware::shamoon::Shamoon shamoon(world.sim(), world.network(),
                                    world.programs(), world.tracker(),
                                    config);
  shamoon.deploy_reporter_sink(world.network());
  auto eldos = benchutil::SigningIdentity::make("EldoS Corporation", 0xe1d);
  for (auto* host : fleet) eldos.trust_on(*host);
  auto driver = pe::Builder{}
                    .program(malware::shamoon::Shamoon::kDriverProgram)
                    .filename("drdisk.sys")
                    .build();
  pki::sign_image(driver, eldos.cert, eldos.key);
  shamoon.set_disk_driver(driver);

  world.sim().run_until(sim::make_date(2012, 8, 1));
  shamoon.infect(*fleet[0], "spear-phish");

  if (out != nullptr) {
    out->section("detonation timeline (1,000 hosts ~ 1:30 of Aramco)");
    out->printf("%-18s %-10s %-10s %-10s\n", "time", "infected", "bricked",
                "reports");
  }
  const sim::TimePoint checkpoints[] = {
      sim::make_date(2012, 8, 5),        sim::make_date(2012, 8, 14),
      sim::make_date(2012, 8, 15, 8, 7), sim::make_date(2012, 8, 15, 10, 0),
      sim::make_date(2012, 8, 16)};
  for (const auto checkpoint : checkpoints) {
    world.sim().run_until(checkpoint);
    if (out != nullptr) {
      out->printf("%-18s %-10zu %-10zu %-10zu\n",
                  sim::format_time(checkpoint).substr(0, 16).c_str(),
                  world.tracker().infected_count("shamoon"),
                  world.count_unbootable(), shamoon.reports().size());
    }
  }
  if (out != nullptr) {
    out->printf("\nfinal: %zu/%zu workstations unbootable; every report "
                "carried domain+ip+count+f1.inf, e.g.:\n",
                world.count_unbootable(), fleet.size());
    if (!shamoon.reports().empty()) {
      const auto& r = shamoon.reports().front();
      out->printf("  domain=%s ip=%s files=%d listing=%zu bytes\n",
                  r.domain.c_str(), r.ip.c_str(), r.files_overwritten,
                  r.f1_listing.size());
    }
  }
}

void reproduce() {
  // The two halves of the figure are independent scenarios: sweep them.
  auto reports = sim::Sweep::map_items(std::vector<int>{0, 1}, [](int half) {
    benchutil::Report report;
    if (half == 0) {
      reproduce_dissection(report);
    } else {
      reproduce_detonation(1000, &report);
    }
    return report;
  });
  for (const auto& report : reports) report.dump();
}

void BM_DissectTrkSvr(benchmark::State& state) {
  core::World lab(1);
  malware::shamoon::Shamoon shamoon(lab.sim(), lab.network(),
                                    lab.programs(), lab.tracker());
  const auto bytes = shamoon.build_trksvr().serialize();
  pki::CertStore store;
  pki::TrustStore trust;
  for (auto _ : state) {
    auto report = analysis::dissect(bytes, store, trust, 0);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DissectTrkSvr);

void BM_FleetDetonation(benchmark::State& state) {
  for (auto _ : state) {
    reproduce_detonation(static_cast<std::size_t>(state.range(0)), nullptr);
  }
}
BENCHMARK(BM_FleetDetonation)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-6: Shamoon components + the Aramco detonation",
                    "Figure 6 — TrkSvr.exe dropper/wiper/reporter/x64");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
