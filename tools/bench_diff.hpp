#pragma once
// bench_diff — compares two google-benchmark JSON dumps and flags timing
// regressions.
//
// The workflow: `bench_smoke` runs every bench binary with reduced
// iterations and writes BENCH_<name>.json; bench_diff matches the fresh
// numbers against the committed baseline by benchmark name and fails when a
// case slowed down past its tolerance. Faster-than-baseline is never an
// error (it is reported, so baselines can be refreshed when wins land).

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cyd::benchdiff {

namespace detail {

/// Just enough JSON for google-benchmark output: objects, arrays, strings
/// with escapes, numbers, bools, null. No dependency on a JSON library —
/// the toolchain image ships none.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// First member with this key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document. Throws std::runtime_error (with a byte
/// offset in the message) on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace detail

struct Options {
  /// Allowed relative slowdown: current <= baseline * (1 + tolerance).
  double tolerance = 0.10;
  /// Per-benchmark tolerance overrides, keyed by exact benchmark name.
  std::map<std::string, double> overrides;
  /// Which timing field to compare: "real_time" or "cpu_time".
  std::string metric = "real_time";
  /// When true, benchmarks present in the baseline but missing from the
  /// current run are reported but do not fail the comparison.
  bool allow_missing = false;
};

/// One matched benchmark, times normalized to nanoseconds.
struct Comparison {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0;      // current / baseline
  double tolerance = 0.0;  // limit applied to this row
  bool regression = false;
};

struct Result {
  std::vector<Comparison> rows;      // matched, in baseline order
  std::vector<std::string> missing;  // in baseline, absent from current
  std::vector<std::string> added;    // in current, absent from baseline

  std::size_t regression_count() const;
  /// True when nothing regressed (and, unless allow_missing, nothing
  /// disappeared).
  bool ok(bool allow_missing) const;
};

/// Extracts {benchmark name -> metric in ns} from a google-benchmark JSON
/// document. Aggregate rows (mean/median/stddev from --benchmark_repetitions)
/// are skipped; repeated names keep their first occurrence. Throws
/// std::runtime_error on malformed JSON or an unknown metric/time unit.
std::map<std::string, double> extract_times(std::string_view json,
                                            const std::string& metric);

/// Compares two google-benchmark JSON documents. Throws std::runtime_error
/// when either document is malformed.
Result compare(std::string_view baseline_json, std::string_view current_json,
               const Options& options);

}  // namespace cyd::benchdiff
