#pragma once
// bench_diff — compares two google-benchmark JSON dumps and flags timing
// regressions.
//
// The workflow: `bench_smoke` runs every bench binary with reduced
// iterations and writes BENCH_<name>.json; bench_diff matches the fresh
// numbers against the committed baseline by benchmark name and fails when a
// case slowed down past its tolerance. Faster-than-baseline is never an
// error (it is reported, so baselines can be refreshed when wins land).
//
// Timings get a tolerance *band*; quality counters get a hard *floor* or
// *ceiling*. --floor NAME=F checks every benchmark that exports counter NAME
// (the attribution benches export `recall`) against the absolute minimum F:
// current < F fails, as does a matched benchmark that dropped a counter its
// baseline had. --ceiling NAME=C is the mirror image for counters where big
// is bad (the epidemic benches export `heap_per_host`): current > C fails.
// There is no "within x% of baseline" for either — a recall or memory
// blow-up is a correctness bug, not a slowdown.

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cyd::benchdiff {

namespace detail {

/// Just enough JSON for google-benchmark output: objects, arrays, strings
/// with escapes, numbers, bools, null. No dependency on a JSON library —
/// the toolchain image ships none.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// First member with this key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document. Throws std::runtime_error (with a byte
/// offset in the message) on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace detail

struct Options {
  /// Allowed relative slowdown: current <= baseline * (1 + tolerance).
  double tolerance = 0.10;
  /// Per-benchmark tolerance overrides, keyed by exact benchmark name.
  std::map<std::string, double> overrides;
  /// Which timing field to compare: "real_time" or "cpu_time".
  std::string metric = "real_time";
  /// When true, benchmarks present in the baseline but missing from the
  /// current run are reported but do not fail the comparison.
  bool allow_missing = false;
  /// Hard floors on user counters, keyed by counter name: every benchmark
  /// in the current run exporting the counter must report at least the
  /// floor value. Absolute, not relative to the baseline.
  std::map<std::string, double> floors;
  /// Hard ceilings on user counters (peak-memory-per-host style maximums):
  /// every benchmark in the current run exporting the counter must report at
  /// most the ceiling value. Absolute, not relative to the baseline.
  std::map<std::string, double> ceilings;
};

/// One matched benchmark, times normalized to nanoseconds.
struct Comparison {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0;      // current / baseline
  double tolerance = 0.0;  // limit applied to this row
  bool regression = false;
};

/// One floor or ceiling check: a (benchmark, counter) pair held against its
/// absolute limit.
struct FloorCheck {
  std::string name;     // benchmark exporting the counter
  std::string counter;  // counter name from Options::floors / ceilings
  double floor = 0.0;   // the limit (a maximum when is_ceiling)
  double baseline = 0.0;  // context only; the limit is absolute
  double current = 0.0;
  bool has_baseline = false;
  bool has_current = false;
  bool is_ceiling = false;  // limit is a maximum, not a minimum
  /// current < floor (or > ceiling), or the counter vanished from a
  /// benchmark whose baseline exported it.
  bool violation = false;
};

struct Result {
  std::vector<Comparison> rows;        // matched, in baseline order
  std::vector<std::string> missing;    // in baseline, absent from current
  std::vector<std::string> added;      // in current, absent from baseline
  std::vector<FloorCheck> floor_rows;  // one per (benchmark, limit) pair

  std::size_t regression_count() const;
  std::size_t floor_violation_count() const;
  /// True when nothing regressed, no floor was broken (and, unless
  /// allow_missing, nothing disappeared).
  bool ok(bool allow_missing) const;
};

/// Extracts {benchmark name -> metric in ns} from a google-benchmark JSON
/// document. Aggregate rows (mean/median/stddev from --benchmark_repetitions)
/// are skipped; repeated names keep their first occurrence. Throws
/// std::runtime_error on malformed JSON or an unknown metric/time unit.
std::map<std::string, double> extract_times(std::string_view json,
                                            const std::string& metric);

/// Extracts {benchmark name -> counter value} for one user counter from a
/// google-benchmark JSON document. Counters appear as top-level numeric
/// members of each benchmark entry; benchmarks without the counter are
/// simply absent from the map. Same row filtering as extract_times.
std::map<std::string, double> extract_counters(std::string_view json,
                                               const std::string& counter);

/// Compares two google-benchmark JSON documents. Throws std::runtime_error
/// when either document is malformed.
Result compare(std::string_view baseline_json, std::string_view current_json,
               const Options& options);

}  // namespace cyd::benchdiff
