// bench_diff CLI — see bench_diff.hpp for the comparison rules.
//
// usage: bench_diff [--tolerance F] [--override NAME=F ...]
//                   [--floor COUNTER=F ...] [--ceiling COUNTER=C ...]
//                   [--metric real_time|cpu_time] [--allow-missing]
//                   <baseline.json> <current.json>
//
// exit 0: no regressions; exit 1: regressions or broken counter floors /
// ceilings (or baselines missing from the current run, unless
// --allow-missing); exit 2: usage / IO / parse errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--tolerance F] [--override NAME=F ...]\n"
               "                  [--floor COUNTER=F ...] "
               "[--ceiling COUNTER=C ...]\n"
               "                  [--metric real_time|cpu_time] "
               "[--allow-missing]\n"
               "                  <baseline.json> <current.json>\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cyd::benchdiff::Options options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance") {
      if (++i >= argc) return usage();
      options.tolerance = std::strtod(argv[i], nullptr);
    } else if (arg == "--override") {
      if (++i >= argc) return usage();
      const std::string spec = argv[i];
      const auto eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) return usage();
      options.overrides[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (arg == "--floor" || arg == "--ceiling") {
      if (++i >= argc) return usage();
      const std::string spec = argv[i];
      const auto eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) return usage();
      auto& limits = arg == "--floor" ? options.floors : options.ceilings;
      limits[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (arg == "--metric") {
      if (++i >= argc) return usage();
      options.metric = argv[i];
    } else if (arg == "--allow-missing") {
      options.allow_missing = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage();

  std::string baseline_json, current_json;
  if (!read_file(files[0], baseline_json)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], current_json)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", files[1].c_str());
    return 2;
  }

  cyd::benchdiff::Result result;
  try {
    result = cyd::benchdiff::compare(baseline_json, current_json, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("%-44s %12s %12s %7s %7s  %s\n", "benchmark", "baseline-ns",
              "current-ns", "ratio", "limit", "verdict");
  for (const auto& row : result.rows) {
    std::printf("%-44s %12.0f %12.0f %7.2f %7.2f  %s\n", row.name.c_str(),
                row.baseline_ns, row.current_ns, row.ratio,
                1.0 + row.tolerance, row.regression ? "REGRESSION" : "ok");
  }
  for (const auto& name : result.missing) {
    std::printf("%-44s %12s %12s %7s %7s  %s\n", name.c_str(), "-", "-", "-",
                "-",
                options.allow_missing ? "missing (allowed)" : "MISSING");
  }
  for (const auto& name : result.added) {
    std::printf("%-44s %12s %12s %7s %7s  %s\n", name.c_str(), "-", "-", "-",
                "-", "new (no baseline; re-capture to track)");
  }
  if (!result.floor_rows.empty()) {
    std::printf("\n%-44s %-20s %10s %10s  %s\n", "benchmark", "counter",
                "limit", "current", "verdict");
    for (const auto& row : result.floor_rows) {
      char current[32];
      if (row.has_current) {
        std::snprintf(current, sizeof(current), "%.4f", row.current);
      } else {
        std::snprintf(current, sizeof(current), "%s", "absent");
      }
      std::printf("%-44s %-20s %c%9.4f %10s  %s\n", row.name.c_str(),
                  row.counter.c_str(), row.is_ceiling ? '<' : '>', row.floor,
                  current,
                  !row.violation   ? "ok"
                  : row.is_ceiling ? "ABOVE CEILING"
                                   : "BELOW FLOOR");
    }
  }

  if (result.ok(options.allow_missing)) {
    std::printf("\nbench_diff: %zu benchmark(s) compared, no regressions\n",
                result.rows.size());
    return 0;
  }
  std::fprintf(stderr, "\nbench_diff: FAILED —");
  if (result.regression_count() > 0) {
    std::fprintf(stderr, " %zu regression(s):", result.regression_count());
    for (const auto& row : result.rows) {
      if (row.regression) {
        std::fprintf(stderr, " %s (%.2fx > %.2fx)", row.name.c_str(),
                     row.ratio, 1.0 + row.tolerance);
      }
    }
  }
  if (result.floor_violation_count() > 0) {
    std::fprintf(stderr, " %zu counter limit violation(s):",
                 result.floor_violation_count());
    for (const auto& row : result.floor_rows) {
      if (!row.violation) continue;
      if (row.has_current) {
        std::fprintf(stderr, " %s %s=%.4f %s %.4f", row.name.c_str(),
                     row.counter.c_str(), row.current,
                     row.is_ceiling ? ">" : "<", row.floor);
      } else {
        std::fprintf(stderr, " %s no longer exports %s", row.name.c_str(),
                     row.counter.c_str());
      }
    }
  }
  if (!options.allow_missing && !result.missing.empty()) {
    std::fprintf(stderr, " %zu baseline benchmark(s) missing from the "
                         "current run", result.missing.size());
  }
  std::fprintf(stderr, "\n");
  return 1;
}
