#!/bin/sh
# Reduced-iteration pass of every bench binary: each benchmark case runs
# (briefly), and a google-benchmark JSON dump lands in the output directory
# as BENCH_<name>.json — the input format bench_diff consumes and the file
# layout the committed baselines in bench/baselines/ use.
#
# usage: run_bench_smoke.sh <bench-bin-dir> <output-dir>
set -eu

bin_dir=${1:?usage: run_bench_smoke.sh <bench-bin-dir> <output-dir>}
out_dir=${2:?usage: run_bench_smoke.sh <bench-bin-dir> <output-dir>}

mkdir -p "$out_dir"

found=0
for bench in "$bin_dir"/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  found=1
  name=$(basename "$bench")
  echo "bench_smoke: $name"
  # --no-repro skips the deterministic reproduction pass (stdout report);
  # min_time keeps each case short. Console output is discarded — the JSON
  # dump is the product.
  "$bench" --no-repro \
           --benchmark_min_time=0.01 \
           --benchmark_format=json \
           --benchmark_out="$out_dir/BENCH_$name.json" \
           --benchmark_out_format=json > /dev/null
done

if [ "$found" -eq 0 ]; then
  echo "run_bench_smoke.sh: no bench binaries in $bin_dir" >&2
  exit 1
fi

echo "bench_smoke: JSON dumps in $out_dir"
