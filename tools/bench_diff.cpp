#include "bench_diff.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace cyd::benchdiff {
namespace detail {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bench_diff: JSON error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Benchmark names are ASCII; keep \uXXXX lossy-but-lossless
          // enough by emitting the low byte.
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace detail

namespace {

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw std::runtime_error("bench_diff: unknown time_unit \"" + unit + "\"");
}

}  // namespace

std::map<std::string, double> extract_times(std::string_view json,
                                            const std::string& metric) {
  if (metric != "real_time" && metric != "cpu_time") {
    throw std::runtime_error("bench_diff: unknown metric \"" + metric +
                             "\" (use real_time or cpu_time)");
  }
  const auto doc = detail::parse_json(json);
  const auto* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr ||
      benchmarks->kind != detail::JsonValue::Kind::kArray) {
    throw std::runtime_error(
        "bench_diff: document has no \"benchmarks\" array");
  }
  std::map<std::string, double> out;
  for (const auto& entry : benchmarks->items) {
    const auto* run_type = entry.find("run_type");
    if (run_type != nullptr && run_type->str != "iteration") continue;
    const auto* name = entry.find("name");
    const auto* time = entry.find(metric);
    if (name == nullptr || time == nullptr) continue;
    double scale = 1.0;  // google-benchmark defaults to ns when unit absent
    if (const auto* unit = entry.find("time_unit")) {
      scale = unit_to_ns(unit->str);
    }
    out.emplace(name->str, time->number * scale);  // first run wins
  }
  return out;
}

std::map<std::string, double> extract_counters(std::string_view json,
                                               const std::string& counter) {
  const auto doc = detail::parse_json(json);
  const auto* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr ||
      benchmarks->kind != detail::JsonValue::Kind::kArray) {
    throw std::runtime_error(
        "bench_diff: document has no \"benchmarks\" array");
  }
  std::map<std::string, double> out;
  for (const auto& entry : benchmarks->items) {
    const auto* run_type = entry.find("run_type");
    if (run_type != nullptr && run_type->str != "iteration") continue;
    const auto* name = entry.find("name");
    const auto* value = entry.find(counter);
    if (name == nullptr || value == nullptr ||
        value->kind != detail::JsonValue::Kind::kNumber) {
      continue;
    }
    out.emplace(name->str, value->number);  // first run wins
  }
  return out;
}

std::size_t Result::regression_count() const {
  std::size_t n = 0;
  for (const auto& row : rows) {
    if (row.regression) ++n;
  }
  return n;
}

std::size_t Result::floor_violation_count() const {
  std::size_t n = 0;
  for (const auto& row : floor_rows) {
    if (row.violation) ++n;
  }
  return n;
}

bool Result::ok(bool allow_missing) const {
  if (regression_count() > 0) return false;
  if (floor_violation_count() > 0) return false;
  return allow_missing || missing.empty();
}

Result compare(std::string_view baseline_json, std::string_view current_json,
               const Options& options) {
  const auto baseline = extract_times(baseline_json, options.metric);
  auto current = extract_times(current_json, options.metric);

  Result result;
  for (const auto& [name, baseline_ns] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      result.missing.push_back(name);
      continue;
    }
    Comparison row;
    row.name = name;
    row.baseline_ns = baseline_ns;
    row.current_ns = it->second;
    row.ratio = baseline_ns > 0.0 ? it->second / baseline_ns : 0.0;
    auto override_it = options.overrides.find(name);
    row.tolerance = override_it != options.overrides.end()
                        ? override_it->second
                        : options.tolerance;
    row.regression =
        baseline_ns > 0.0 && row.ratio > 1.0 + row.tolerance;
    result.rows.push_back(std::move(row));
    current.erase(it);
  }
  for (const auto& [name, ns] : current) result.added.push_back(name);

  // Floors and ceilings: every current-run benchmark exporting the counter
  // is held to the absolute limit; a matched benchmark whose baseline
  // exported the counter but which no longer does is a violation too (a
  // silently dropped quality gate must not read as a pass).
  const auto check_limits = [&](const std::map<std::string, double>& limits,
                                bool is_ceiling) {
    for (const auto& [counter, limit] : limits) {
      const auto baseline_vals = extract_counters(baseline_json, counter);
      const auto current_vals = extract_counters(current_json, counter);
      const auto current_names = extract_times(current_json, options.metric);
      for (const auto& [name, value] : current_vals) {
        FloorCheck check;
        check.name = name;
        check.counter = counter;
        check.floor = limit;
        check.current = value;
        check.has_current = true;
        check.is_ceiling = is_ceiling;
        if (const auto it = baseline_vals.find(name);
            it != baseline_vals.end()) {
          check.baseline = it->second;
          check.has_baseline = true;
        }
        check.violation = is_ceiling ? value > limit : value < limit;
        result.floor_rows.push_back(std::move(check));
      }
      for (const auto& [name, value] : baseline_vals) {
        if (current_vals.contains(name)) continue;
        if (!current_names.contains(name)) continue;  // whole benchmark gone:
                                                      // already in `missing`
        FloorCheck check;
        check.name = name;
        check.counter = counter;
        check.floor = limit;
        check.baseline = value;
        check.has_baseline = true;
        check.is_ceiling = is_ceiling;
        check.violation = true;
        result.floor_rows.push_back(std::move(check));
      }
    }
  };
  check_limits(options.floors, /*is_ceiling=*/false);
  check_limits(options.ceilings, /*is_ceiling=*/true);
  return result;
}

}  // namespace cyd::benchdiff
